//===- tests/ServeFaultTest.cpp - Serving-tier fault injection -----------------===//
//
// The production serving tier under hostile conditions, exercised over
// real sockets (TCP loopback through the daemon's own acceptLoop, the
// same code path `typilus_serve --port` runs): clients that vanish
// mid-request, clients that stop reading while the send buffer fills,
// garbage bytes sharing a connection with valid requests, SIGHUP-style
// hot reloads racing in-flight predicts, load shedding at --max-queue,
// and the response cache's byte-identity contract — including a
// property-style interleaving test asserting no request is ever answered
// from a stale artifact or a stale cache entry.
//
// Unlike ServeTest (live in-process model), this suite serves *loaded
// artifacts* — reload needs predictors that own their universe, exactly
// what `Predictor::load` produces and the daemon serves.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "corpus/Dataset.h"
#include "serve/Server.h"
#include "support/Json.h"
#include "support/Socket.h"
#include "support/Str.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <random>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace typilus;
using namespace typilus::serve;

namespace {

//===----------------------------------------------------------------------===//
// Fixture: one tiny corpus, TWO saved artifacts (trained differently, so
// their predictions — and therefore their response digests — differ).
// Reload tests swap between them and check which one answered.
//===----------------------------------------------------------------------===//

class ServeFaultTest : public ::testing::Test {
protected:
  static void trainAndSave(int Epochs, const std::string &Path) {
    ModelConfig MC; // Graph + Typilus, what the daemon serves
    MC.HiddenDim = 8;
    MC.TimeSteps = 2;
    TrainOptions TO;
    TO.Epochs = Epochs;
    TO.BatchFiles = 4;
    std::unique_ptr<TypeModel> M = makeModel(MC, WB->DS, *WB->U);
    trainModel(*M, WB->DS.Train, TO);
    std::vector<const FileExample *> MapFiles;
    for (const FileExample &F : WB->DS.Train)
      MapFiles.push_back(&F);
    for (const FileExample &F : WB->DS.Valid)
      MapFiles.push_back(&F);
    Predictor P = Predictor::knn(*M, MapFiles);
    std::string Err;
    ASSERT_TRUE(P.save(Path, *WB->U, &Err)) << Err;
  }

  static void SetUpTestSuite() {
    CorpusConfig CC;
    CC.NumFiles = 12;
    CC.NumUdts = 6;
    DatasetConfig DC;
    DC.CommonThreshold = 2;
    WB = new Workbench(Workbench::make(CC, DC));
    // Per-process paths: ctest runs each test of this suite as its own
    // process, in parallel — a shared path would be clobbered mid-load.
    std::string Pid = std::to_string(static_cast<long>(::getpid()));
    PathA = testing::TempDir() + "typilus_fault_a." + Pid + ".typilus";
    PathB = testing::TempDir() + "typilus_fault_b." + Pid + ".typilus";
    // One vs. two training epochs: same corpus, different weights,
    // different candidate probabilities — distinguishable artifacts.
    trainAndSave(1, PathA);
    trainAndSave(2, PathB);
  }

  static void TearDownTestSuite() {
    std::remove(PathA.c_str());
    std::remove(PathB.c_str());
    delete WB;
    WB = nullptr;
  }

  static std::shared_ptr<Predictor> loadArtifact(const std::string &Path) {
    std::string Err;
    std::shared_ptr<Predictor> P = Predictor::load(Path, &Err);
    EXPECT_NE(P, nullptr) << Err;
    return P;
  }

  /// What a fresh one-shot prediction of \p F under \p P digests to —
  /// the reference every served response is compared against.
  static std::string oneShotDigest(Predictor &P, const CorpusFile &F) {
    FileExample E = buildExample(F, *P.universe(), {});
    return strformat("%016llx", static_cast<unsigned long long>(
                                    predictionDigest(P.predictFile(E))));
  }

  static std::string requestLine(int64_t Id, const CorpusFile &F,
                                 int Limit = -1) {
    return "{\"id\":" + std::to_string(Id) +
           ",\"method\":\"predict\",\"path\":" + json::quoted(F.Path) +
           ",\"limit\":" + std::to_string(Limit) +
           ",\"source\":" + json::quoted(F.Source) + "}\n";
  }

  /// Parses the "digest" field out of a predict response ("" on error
  /// responses).
  static std::string digestOf(const std::string &Response) {
    json::Value V;
    std::string Err;
    if (!json::parse(Response, V, &Err))
      return "";
    return V.getString("digest", "");
  }

  static Workbench *WB;
  static std::string PathA, PathB;
};

Workbench *ServeFaultTest::WB = nullptr;
std::string ServeFaultTest::PathA;
std::string ServeFaultTest::PathB;

//===----------------------------------------------------------------------===//
// TCP harness: the daemon's own acceptLoop on an ephemeral loopback
// port, with the same wake-pipe wiring typilus_serve uses for signals.
//===----------------------------------------------------------------------===//

class TcpDaemon {
public:
  /// \p OnPoke runs (on the accept thread) for wake-pipe pokes that are
  /// not the stop signal — the test's stand-in for a SIGHUP handler.
  TcpDaemon(Server &S, int SendTimeoutSeconds = 30,
            std::function<void()> OnPoke = nullptr) {
    EXPECT_EQ(::pipe(Wake), 0);
    std::string Err;
    EXPECT_TRUE(Listener.listenOn("127.0.0.1", 0, &Err)) << Err;
    AcceptLoopOptions AO;
    AO.SendTimeoutSeconds = SendTimeoutSeconds;
    AO.WakeFd = Wake[0];
    AO.OnWake = [this, OnPoke] {
      char Buf[16];
      (void)!read(Wake[0], Buf, sizeof(Buf));
      if (Stopping.load())
        return true;
      if (OnPoke)
        OnPoke();
      return false;
    };
    AO.OnDrainStart = [this] { Listener.close(); };
    int Fd = Listener.fd();
    Loop = std::thread([&S, Fd, AO] { acceptLoop({Fd}, S, AO); });
  }

  ~TcpDaemon() {
    stop();
    ::close(Wake[0]);
    ::close(Wake[1]);
  }

  uint16_t port() const { return Listener.port(); }

  void poke() {
    char B = 1;
    (void)!write(Wake[1], &B, 1);
  }

  /// Begins the drain and waits for it: every accepted request answered,
  /// Server stopped.
  void stop() {
    Stopping = true;
    poke();
    if (Loop.joinable())
      Loop.join();
  }

private:
  TcpListener Listener;
  int Wake[2] = {-1, -1};
  std::atomic<bool> Stopping{false};
  std::thread Loop;
};

/// A line-oriented TCP client against the harness.
class TcpClient {
public:
  explicit TcpClient(uint16_t Port) {
    std::string Err;
    Ok = connectTcp("127.0.0.1", Port, Fd, &Err);
    EXPECT_TRUE(Ok) << Err;
  }

  bool valid() const { return Ok; }
  int fd() const { return Fd.fd(); }

  void send(std::string_view Data) { EXPECT_TRUE(writeAll(Fd.fd(), Data)); }

  std::string readLine() {
    if (!R)
      R = std::make_unique<LineReader>(Fd.fd(), 256u << 20);
    std::string Line;
    LineReader::Status St;
    do
      St = R->next(Line);
    while (St == LineReader::Status::Interrupted);
    EXPECT_EQ(St, LineReader::Status::Line);
    return Line;
  }

  void close() { Fd.reset(); }

private:
  FileDesc Fd;
  std::unique_ptr<LineReader> R;
  bool Ok = false;
};

//===----------------------------------------------------------------------===//
// Fault injection over real TCP connections
//===----------------------------------------------------------------------===//

TEST_F(ServeFaultTest, MidRequestDisconnectOverTcpLeavesDaemonServing) {
  std::shared_ptr<Predictor> P = loadArtifact(PathA);
  Server S(*P, *P->universe());
  TcpDaemon D(S);
  {
    TcpClient C(D.port());
    // Half a predict request, then the client vanishes without a
    // newline — the reader must see EOF and fold the connection.
    C.send("{\"id\":1,\"method\":\"predict\",\"source\":\"def f(");
    C.close();
  }
  {
    // And mid-*response*: a full predict lands, the client disappears
    // before reading the answer. The dispatcher's write goes nowhere.
    TcpClient C(D.port());
    C.send(requestLine(2, WB->Files[0]));
    C.close();
  }
  TcpClient C(D.port());
  C.send("{\"id\":3,\"method\":\"ping\"}\n");
  EXPECT_NE(C.readLine().find("\"pong\":true"), std::string::npos);
  C.send(requestLine(4, WB->Files[1]));
  EXPECT_EQ(digestOf(C.readLine()), oneShotDigest(*P, WB->Files[1]));
  D.stop();
}

TEST_F(ServeFaultTest, GarbageThenValidRequestOnOneConnection) {
  std::shared_ptr<Predictor> P = loadArtifact(PathA);
  Server S(*P, *P->universe());
  TcpDaemon D(S);
  TcpClient C(D.port());
  // Binary junk, an empty line, broken JSON — then a well-formed
  // request, all on the same connection.
  C.send(std::string("\x01\x02\xff\xfe not json at all\n", 21));
  EXPECT_NE(C.readLine().find("\"ok\":false"), std::string::npos);
  C.send("\n");
  C.send("{\"id\":7,\"method\":\n");
  EXPECT_NE(C.readLine().find("\"ok\":false"), std::string::npos);
  C.send(requestLine(8, WB->Files[2]));
  std::string Resp = C.readLine();
  EXPECT_NE(Resp.find("\"id\":8"), std::string::npos) << Resp;
  EXPECT_EQ(digestOf(Resp), oneShotDigest(*P, WB->Files[2]));
  D.stop();
}

TEST_F(ServeFaultTest, SlowReaderTimesOutWithoutWedgingTheServer) {
  std::shared_ptr<Predictor> P = loadArtifact(PathA);
  Server S(*P, *P->universe());
  // 1s of write backpressure before a response is dropped — the fault
  // budget this test waits out.
  TcpDaemon D(S, /*SendTimeoutSeconds=*/1);

  // A client with a tiny receive window that never reads: responses pile
  // into the server's send buffer until writes time out. (SO_RCVBUF must
  // be set before connect to clamp the negotiated window.)
  int Raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Raw, 0);
  int RcvBuf = 4096;
  ASSERT_EQ(
      ::setsockopt(Raw, SOL_SOCKET, SO_RCVBUF, &RcvBuf, sizeof(RcvBuf)), 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(D.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr), 1);
  ASSERT_EQ(::connect(Raw, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  FileDesc Slow(Raw);

  // 200 identical predicts: collapse + cache make them cheap to answer,
  // but the responses still total far more than the clamped window.
  std::string Burst;
  for (int I = 0; I != 200; ++I)
    Burst += requestLine(I, WB->Files[0]);
  ASSERT_TRUE(writeAll(Slow.fd(), Burst));

  // The server must keep answering other clients while the slow one
  // times out, and the drain must not hang behind its dead buffer.
  TcpClient C(D.port());
  C.send("{\"id\":900,\"method\":\"ping\"}\n");
  EXPECT_NE(C.readLine().find("\"pong\":true"), std::string::npos);
  C.send(requestLine(901, WB->Files[3]));
  EXPECT_EQ(digestOf(C.readLine()), oneShotDigest(*P, WB->Files[3]));
  D.stop();
}

//===----------------------------------------------------------------------===//
// Backpressure: the --max-queue load shed
//===----------------------------------------------------------------------===//

TEST_F(ServeFaultTest, QueueFullPredictsAreShedWithOverloadedResponse) {
  std::shared_ptr<Predictor> P = loadArtifact(PathA);
  ServerOptions SO;
  SO.MaxQueue = 2;
  Server S(*P, *P->universe(), SO);

  // Wedge the dispatcher inside the first response callback so the
  // queue depth is fully under test control.
  std::mutex Mu;
  std::condition_variable CV;
  bool Entered = false, Release = false;
  ASSERT_TRUE(S.submit(
      [&] {
        Request R;
        R.Id = 0;
        R.M = Method::Predict;
        R.Path = WB->Files[0].Path;
        R.Source = WB->Files[0].Source;
        return R;
      }(),
      [&](std::string) {
        std::unique_lock<std::mutex> L(Mu);
        Entered = true;
        CV.notify_all();
        CV.wait(L, [&] { return Release; });
      }));
  {
    std::unique_lock<std::mutex> L(Mu);
    CV.wait(L, [&] { return Entered; });
  }

  // Queue is empty and the dispatcher is stuck: two predicts fit...
  std::atomic<int> Answered{0};
  Request R1;
  R1.Id = 1;
  R1.M = Method::Predict;
  R1.Path = WB->Files[1].Path;
  R1.Source = WB->Files[1].Source;
  Request R2 = R1;
  R2.Id = 2;
  ASSERT_TRUE(S.submit(R1, [&](std::string) { ++Answered; }));
  ASSERT_TRUE(S.submit(R2, [&](std::string) { ++Answered; }));

  // ...the third is shed immediately, on this thread, before submit
  // returns — the connection stays open, the client just gets told.
  std::string ShedResponse;
  ASSERT_TRUE(S.submit(
      [&] {
        Request R = R1;
        R.Id = 3;
        return R;
      }(),
      [&](std::string Resp) { ShedResponse = std::move(Resp); }));
  EXPECT_NE(ShedResponse.find("\"ok\":false"), std::string::npos)
      << ShedResponse;
  EXPECT_NE(ShedResponse.find("\"overloaded\":true"), std::string::npos)
      << ShedResponse;
  EXPECT_NE(ShedResponse.find("\"id\":3"), std::string::npos) << ShedResponse;

  // Control requests are never shed: a ping passes a full queue, so an
  // overloaded daemon can still be probed and drained.
  std::atomic<bool> Ponged{false};
  Request Ping;
  Ping.Id = 4;
  Ping.M = Method::Ping;
  ASSERT_TRUE(S.submit(Ping, [&](std::string Resp) {
    Ponged = Resp.find("\"pong\":true") != std::string::npos;
  }));

  {
    std::lock_guard<std::mutex> L(Mu);
    Release = true;
    CV.notify_all();
  }
  S.stop();
  EXPECT_EQ(Answered.load(), 2);
  EXPECT_TRUE(Ponged.load());
  EXPECT_EQ(S.stats().Overloaded, 1u);
}

//===----------------------------------------------------------------------===//
// The response cache's byte-identity contract
//===----------------------------------------------------------------------===//

/// Submits one request and waits for its response.
std::string serveOneRequest(Server &S, const Request &R) {
  std::mutex Mu;
  std::condition_variable CV;
  bool Done = false;
  std::string Out;
  EXPECT_TRUE(S.submit(R, [&](std::string Resp) {
    std::lock_guard<std::mutex> L(Mu);
    Out = std::move(Resp);
    Done = true;
    CV.notify_all();
  }));
  std::unique_lock<std::mutex> L(Mu);
  CV.wait(L, [&] { return Done; });
  return Out;
}

TEST_F(ServeFaultTest, CacheHitIsByteIdenticalToItsMiss) {
  std::shared_ptr<Predictor> P = loadArtifact(PathA);
  ServerOptions SO;
  SO.CacheEntries = 8;
  Server S(*P, *P->universe(), SO);

  Request R;
  R.Id = 7;
  R.M = Method::Predict;
  R.Path = WB->Files[0].Path;
  R.Source = WB->Files[0].Source;
  std::string Miss = serveOneRequest(S, R); // embeds
  std::string Hit = serveOneRequest(S, R);  // must not
  EXPECT_EQ(Miss, Hit);

  // A hit re-serializes under the *request's* limit: ask again capped.
  Request Capped = R;
  Capped.Limit = 1;
  std::string CappedHit = serveOneRequest(S, Capped);
  S.stop(); // joins the dispatcher: counters are final after this
  ServerStats St = S.stats();
  EXPECT_EQ(St.CacheMisses, 1u);
  EXPECT_EQ(St.CacheHits, 2u);

  // Reference: a cache-less server serving the capped request fresh.
  std::shared_ptr<Predictor> P2 = loadArtifact(PathA);
  ServerOptions Off;
  Off.CacheEntries = 0;
  Server S2(*P2, *P2->universe(), Off);
  std::string Fresh = serveOneRequest(S2, Capped);
  S2.stop();
  EXPECT_EQ(CappedHit, Fresh);
  EXPECT_EQ(S2.stats().CacheHits, 0u);
  EXPECT_EQ(S2.stats().CacheMisses, 0u); // disabled cache counts nothing
}

TEST_F(ServeFaultTest, ChangedSourceMissesStaleCacheEntry) {
  std::shared_ptr<Predictor> P = loadArtifact(PathA);
  Server S(*P, *P->universe());
  Request R;
  R.Id = 1;
  R.M = Method::Predict;
  R.Path = WB->Files[0].Path;
  R.Source = WB->Files[0].Source;
  std::string First = serveOneRequest(S, R);
  // Same path, edited contents: the source digest in the key must force
  // a fresh prediction, not a stale answer for the old text.
  Request Edited = R;
  Edited.Source = WB->Files[1].Source;
  std::string Second = serveOneRequest(S, Edited);
  EXPECT_NE(digestOf(First), digestOf(Second));
  S.stop(); // joins the dispatcher: counters are final after this
  ServerStats St = S.stats();
  EXPECT_EQ(St.CacheMisses, 2u);
  EXPECT_EQ(St.CacheHits, 0u);
}

//===----------------------------------------------------------------------===//
// Hot reload racing in-flight predicts (the SIGHUP path, over TCP)
//===----------------------------------------------------------------------===//

TEST_F(ServeFaultTest, ArtifactsProduceDistinctDigests) {
  // The reload tests tell artifacts apart by digest; make sure they can.
  std::shared_ptr<Predictor> A = loadArtifact(PathA);
  std::shared_ptr<Predictor> B = loadArtifact(PathB);
  bool AnyDiffer = false;
  for (size_t I = 0; I != 4; ++I)
    AnyDiffer |= oneShotDigest(*A, WB->Files[I]) !=
                 oneShotDigest(*B, WB->Files[I]);
  ASSERT_TRUE(AnyDiffer) << "1-epoch and 2-epoch artifacts predict "
                            "identically; reload tests would be vacuous";
}

TEST_F(ServeFaultTest, SighupReloadUnderLoadDropsNothingAndMixesNothing) {
  std::shared_ptr<Predictor> Base = loadArtifact(PathA);
  // Every wake-pipe poke swaps to the *other* artifact, mid-load.
  std::atomic<int> LoadedB{0};
  ServerOptions SO;
  SO.OnReload = [&](std::string *Err) -> std::shared_ptr<Predictor> {
    bool ToB = (LoadedB.fetch_add(1) % 2) == 0;
    return Predictor::load(ToB ? PathB : PathA, Err);
  };
  Server S(*Base, *Base->universe(), SO);
  TcpDaemon D(S, /*SendTimeoutSeconds=*/30, /*OnPoke=*/[&S] {
    Request R;
    R.Id = -1;
    R.M = Method::Reload;
    S.submit(R, [](std::string Resp) {
      EXPECT_NE(Resp.find("\"reloaded\":true"), std::string::npos) << Resp;
    });
  });

  // Acceptable digests per file: artifact A's or artifact B's — a
  // response matching neither would mean a reload tore a batch or
  // served a stale cache entry.
  const size_t NumFiles = 4;
  std::shared_ptr<Predictor> RefB = loadArtifact(PathB);
  std::vector<std::string> DigestA(NumFiles), DigestB(NumFiles);
  for (size_t I = 0; I != NumFiles; ++I) {
    DigestA[I] = oneShotDigest(*Base, WB->Files[I]);
    DigestB[I] = oneShotDigest(*RefB, WB->Files[I]);
  }

  const int Clients = 4, PerClient = 24;
  std::vector<std::vector<std::string>> Got(Clients);
  std::vector<std::thread> Threads;
  for (int T = 0; T != Clients; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != PerClient; ++I) {
        TcpClient C(D.port());
        if (!C.valid())
          return; // EXPECT in the ctor already flagged it
        size_t File = static_cast<size_t>(T + I) % NumFiles;
        C.send(requestLine(T * PerClient + I, WB->Files[File]));
        Got[T].push_back(C.readLine());
      }
    });
  for (int I = 0; I != 8; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    D.poke(); // SIGHUP equivalent, racing the predicts above
  }
  for (std::thread &T : Threads)
    T.join();
  D.stop();

  size_t Answered = 0;
  for (int T = 0; T != Clients; ++T) {
    ASSERT_EQ(Got[T].size(), static_cast<size_t>(PerClient))
        << "client " << T << " lost responses";
    for (int I = 0; I != PerClient; ++I) {
      ++Answered;
      size_t File = static_cast<size_t>(T + I) % NumFiles;
      std::string Dg = digestOf(Got[T][I]);
      EXPECT_TRUE(Dg == DigestA[File] || Dg == DigestB[File])
          << "client " << T << " response " << I
          << " matches neither artifact: " << Got[T][I];
    }
  }
  EXPECT_EQ(Answered, static_cast<size_t>(Clients * PerClient));
  EXPECT_GE(S.stats().Reloads, 1u);
}

//===----------------------------------------------------------------------===//
// Property-style: random predict/reload/evict interleavings never serve
// a stale response
//===----------------------------------------------------------------------===//

TEST_F(ServeFaultTest, RandomInterleavingsAlwaysAnswerFromTheActiveArtifact) {
  // The invariant: because reload rides the request queue, the k-th
  // submitted predict must be answered by the artifact active after all
  // reloads submitted before it — computable without touching the
  // server. Tiny cache (2 entries, 4 distinct files) keeps evictions in
  // the mix; seeds make failures replayable.
  const size_t NumFiles = 4;
  std::shared_ptr<Predictor> RefA = loadArtifact(PathA);
  std::shared_ptr<Predictor> RefB = loadArtifact(PathB);
  std::vector<std::string> Digest[2];
  Digest[0].resize(NumFiles);
  Digest[1].resize(NumFiles);
  for (size_t I = 0; I != NumFiles; ++I) {
    Digest[0][I] = oneShotDigest(*RefA, WB->Files[I]);
    Digest[1][I] = oneShotDigest(*RefB, WB->Files[I]);
  }

  for (uint32_t Seed : {20200613u, 7u, 99u}) {
    std::shared_ptr<Predictor> Base = loadArtifact(PathA);
    std::atomic<int> Reloaded{0};
    ServerOptions SO;
    SO.CacheEntries = 2;
    SO.OnReload = [&](std::string *Err) -> std::shared_ptr<Predictor> {
      // The n-th reload processed is the n-th submitted (FIFO queue),
      // so the artifact sequence is A, B, A, B, ...
      bool ToB = (Reloaded.fetch_add(1) % 2) == 0;
      return Predictor::load(ToB ? PathB : PathA, Err);
    };
    Server S(*Base, *Base->universe(), SO);

    std::mt19937 Rng(Seed);
    int Active = 0; // 0 = A, flips on every submitted reload
    struct Expect {
      size_t Index;     // position in Responses
      std::string Want; // digest of the active artifact's prediction
    };
    std::vector<Expect> Expected;
    std::mutex Mu;
    std::vector<std::string> Responses;
    auto Collect = [&](std::string R) {
      std::lock_guard<std::mutex> L(Mu);
      Responses.push_back(std::move(R));
    };

    const int Ops = 60;
    size_t Submitted = 0;
    for (int Op = 0; Op != Ops; ++Op) {
      if (Rng() % 5 == 0) { // ~1 in 5: hot reload
        Request R;
        R.Id = static_cast<int64_t>(Op);
        R.M = Method::Reload;
        ASSERT_TRUE(S.submit(R, Collect));
        Active ^= 1;
      } else {
        size_t File = Rng() % NumFiles;
        Request R;
        R.Id = static_cast<int64_t>(Op);
        R.M = Method::Predict;
        R.Path = WB->Files[File].Path;
        R.Source = WB->Files[File].Source;
        ASSERT_TRUE(S.submit(R, Collect));
        Expected.push_back(Expect{Submitted, Digest[Active][File]});
      }
      ++Submitted;
    }
    S.stop();
    ServerStats St = S.stats();

    ASSERT_EQ(Responses.size(), Submitted) << "seed " << Seed;
    // Submission order == response order: one queue, one dispatcher,
    // and batches answer in arrival order.
    for (const Expect &E : Expected)
      EXPECT_EQ(digestOf(Responses[E.Index]), E.Want)
          << "seed " << Seed << " request " << E.Index << ": "
          << Responses[E.Index];
    EXPECT_EQ(St.Reloads, static_cast<uint64_t>(Reloaded.load()))
        << "seed " << Seed;
    EXPECT_GT(St.CacheEvictions, 0u)
        << "seed " << Seed << ": 4 files through a 2-entry cache";
  }
}

} // namespace
