//===- tests/LspTest.cpp - LSP front-end tests ---------------------------------===//
//
// The editor front-end's contract, bottom-up: Content-Length framing
// (split reads, CRLF and bare-LF separators, oversized-body recovery,
// header caps), URI mapping, and a full JSON-RPC session over a
// socketpair — initialize through didOpen/didChange/didClose to
// shutdown/exit — whose published digests must match predictSource over
// the same text (the bit-identity the CI smoke test pins end to end).
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "lsp/LspServer.h"
#include "lsp/Transport.h"
#include "support/Socket.h"
#include "support/Str.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace typilus;
using namespace typilus::lsp;

//===----------------------------------------------------------------------===//
// FrameReader: the base-protocol framing layer
//===----------------------------------------------------------------------===//

namespace {

/// A pipe with the test on the write end and a FrameReader on the read
/// end. Writes are split however each test likes, so partial-frame
/// delivery is covered.
struct FramePipe {
  FramePipe(size_t MaxBody = kDefaultMaxFrameBytes) {
    int Fds[2];
    EXPECT_EQ(pipe(Fds), 0);
    Rd = FileDesc(Fds[0]);
    Wr = FileDesc(Fds[1]);
    Reader = std::make_unique<FrameReader>(Rd.fd(), MaxBody);
  }
  void send(std::string_view Bytes) {
    ASSERT_TRUE(writeAll(Wr.fd(), Bytes));
  }
  FrameReader::Status next(std::string &Out) { return Reader->next(Out); }

  FileDesc Rd, Wr;
  std::unique_ptr<FrameReader> Reader;
};

} // namespace

TEST(FrameReaderTest, SingleFrameRoundTrips) {
  FramePipe P;
  P.send(frameMessage("{\"jsonrpc\":\"2.0\"}"));
  std::string Body;
  ASSERT_EQ(P.next(Body), FrameReader::Status::Message);
  EXPECT_EQ(Body, "{\"jsonrpc\":\"2.0\"}");
}

TEST(FrameReaderTest, CoalescedAndSplitFrames) {
  FramePipe P;
  // Two frames in one write, the second split mid-header and mid-body
  // across writes: the reader must reassemble without losing sync.
  std::string A = frameMessage("first");
  std::string B = frameMessage("second message body");
  P.send(A + B.substr(0, 9));
  std::string Body;
  ASSERT_EQ(P.next(Body), FrameReader::Status::Message);
  EXPECT_EQ(Body, "first");
  P.send(B.substr(9, 15));
  P.send(B.substr(24));
  ASSERT_EQ(P.next(Body), FrameReader::Status::Message);
  EXPECT_EQ(Body, "second message body");
}

TEST(FrameReaderTest, AcceptsBareLfSeparators) {
  // Hand-rolled clients (printf pipelines) often emit \n\n instead of
  // the spec's \r\n\r\n; both are accepted.
  FramePipe P;
  P.send("Content-Length: 5\n\nhello");
  std::string Body;
  ASSERT_EQ(P.next(Body), FrameReader::Status::Message);
  EXPECT_EQ(Body, "hello");
}

TEST(FrameReaderTest, HeaderFieldsAreCaseInsensitive) {
  FramePipe P;
  P.send("CONTENT-LENGTH: 4\r\nContent-Type: application/json\r\n\r\nbody");
  std::string Body;
  ASSERT_EQ(P.next(Body), FrameReader::Status::Message);
  EXPECT_EQ(Body, "body");
}

TEST(FrameReaderTest, OversizedBodyIsDiscardedFrameAligned) {
  FramePipe P(/*MaxBody=*/16);
  std::string Big(100, 'x');
  P.send(frameMessage(Big));
  P.send(frameMessage("ok"));
  std::string Body;
  // The oversized frame surfaces as TooLarge once its body has been
  // drained; the next frame is intact.
  ASSERT_EQ(P.next(Body), FrameReader::Status::TooLarge);
  ASSERT_EQ(P.next(Body), FrameReader::Status::Message);
  EXPECT_EQ(Body, "ok");
}

TEST(FrameReaderTest, MissingContentLengthIsAnError) {
  FramePipe P;
  P.send("Content-Type: application/json\r\n\r\n{}");
  std::string Body;
  EXPECT_EQ(P.next(Body), FrameReader::Status::Error);
}

TEST(FrameReaderTest, UnboundedHeaderSectionIsAnError) {
  FramePipe P;
  // A peer that never sends the blank line cannot grow the buffer past
  // the header cap.
  std::string Junk = "X-Filler: " + std::string(kMaxHeaderBytes, 'y');
  P.send(Junk);
  std::string Body;
  EXPECT_EQ(P.next(Body), FrameReader::Status::Error);
}

TEST(FrameReaderTest, EofAfterCompleteFrames) {
  FramePipe P;
  P.send(frameMessage("tail"));
  P.Wr.reset(); // close the write end
  std::string Body;
  ASSERT_EQ(P.next(Body), FrameReader::Status::Message);
  EXPECT_EQ(Body, "tail");
  EXPECT_EQ(P.next(Body), FrameReader::Status::Eof);
}

TEST(FrameReaderTest, PartialTrailingFrameIsDroppedAtEof) {
  FramePipe P;
  P.send("Content-Length: 100\r\n\r\nonly a little");
  P.Wr.reset();
  std::string Body;
  EXPECT_EQ(P.next(Body), FrameReader::Status::Eof);
}

//===----------------------------------------------------------------------===//
// URI mapping
//===----------------------------------------------------------------------===//

TEST(LspUriTest, RoundTripsPlainPaths) {
  EXPECT_EQ(pathToUri("/proj/a.py"), "file:///proj/a.py");
  EXPECT_EQ(uriToPath("file:///proj/a.py"), "/proj/a.py");
  EXPECT_EQ(uriToPath(pathToUri("/proj/pkg/util.py")), "/proj/pkg/util.py");
}

TEST(LspUriTest, PercentEncodingRoundTrips) {
  std::string Path = "/proj/with space/a#b.py";
  std::string Uri = pathToUri(Path);
  EXPECT_EQ(Uri.find(' '), std::string::npos);
  EXPECT_EQ(Uri.find('#'), std::string::npos);
  EXPECT_EQ(uriToPath(Uri), Path);
}

TEST(LspUriTest, NonFileUrisPassThrough) {
  EXPECT_EQ(uriToPath("untitled:Untitled-1"), "untitled:Untitled-1");
}

//===----------------------------------------------------------------------===//
// Full session over a socketpair
//===----------------------------------------------------------------------===//

namespace {

/// One tiny trained workbench per suite (training dominates the cost).
class LspSessionTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    CorpusConfig CC;
    CC.NumFiles = 14;
    CC.NumUdts = 8;
    DatasetConfig DC;
    DC.CommonThreshold = 2;
    WB = new Workbench(Workbench::make(CC, DC));
    ModelConfig MC;
    MC.HiddenDim = 8;
    MC.TimeSteps = 2;
    TrainOptions TO;
    TO.Epochs = 1;
    TO.BatchFiles = 4;
    Model = makeModel(MC, WB->DS, *WB->U).release();
    trainModel(*Model, WB->DS.Train, TO);
  }
  static void TearDownTestSuite() {
    delete Model;
    delete WB;
    Model = nullptr;
    WB = nullptr;
  }

  static Predictor makePredictor() {
    std::vector<const FileExample *> MapFiles;
    for (const FileExample &F : WB->DS.Train)
      MapFiles.push_back(&F);
    Predictor P = Predictor::knn(*Model, MapFiles);
    P.setUniverse(*WB->U);
    return P;
  }

  static Workbench *WB;
  static TypeModel *Model;
};

Workbench *LspSessionTest::WB = nullptr;
TypeModel *LspSessionTest::Model = nullptr;

/// Runs LspServer::run over one end of a socketpair; the test drives the
/// client end with framed JSON-RPC and reads framed server messages.
class SessionHarness {
public:
  explicit SessionHarness(Predictor &P, LspOptions O = {}) {
    int Fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    Client = FileDesc(Fds[0]);
    ServerEnd = FileDesc(Fds[1]);
    int Fd = ServerEnd.fd();
    Srv = std::make_unique<LspServer>(
        P, [Fd](std::string Framed) { (void)writeAll(Fd, Framed); }, O);
    Runner = std::thread([this, Fd] { ExitCode = Srv->run(Fd); });
  }

  ~SessionHarness() {
    Client.reset();
    if (Runner.joinable())
      Runner.join();
  }

  void request(std::string_view Body) {
    ASSERT_TRUE(writeAll(Client.fd(), frameMessage(Body)));
  }

  /// Next framed message from the server, parsed.
  json::Value read() {
    if (!R)
      R = std::make_unique<FrameReader>(Client.fd());
    std::string Body;
    FrameReader::Status St;
    do
      St = R->next(Body);
    while (St == FrameReader::Status::Interrupted);
    EXPECT_EQ(St, FrameReader::Status::Message);
    json::Value V;
    std::string Err;
    EXPECT_TRUE(json::parse(Body, V, &Err)) << Body << " -- " << Err;
    return V;
  }

  /// Reads until a message with \p Method arrives (skipping others);
  /// fails the test after a bounded number of frames.
  json::Value readUntil(std::string_view Method) {
    for (int I = 0; I != 16; ++I) {
      json::Value V = read();
      if (V.getString("method", "") == Method)
        return V;
    }
    ADD_FAILURE() << "no " << Method << " message arrived";
    return json::Value();
  }

  /// Joins the server thread (after the client closes or exit is sent)
  /// and returns LspServer::run's exit code.
  int finish() {
    Client.reset();
    if (Runner.joinable())
      Runner.join();
    return ExitCode;
  }

private:
  FileDesc Client, ServerEnd;
  std::unique_ptr<LspServer> Srv;
  std::unique_ptr<FrameReader> R;
  std::thread Runner;
  int ExitCode = -1;
};

/// didOpen/didChange request bodies over \p Source (JSON-escaped).
std::string didOpenBody(const std::string &Uri, const std::string &Source) {
  std::string B = "{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didOpen\","
                  "\"params\":{\"textDocument\":{\"uri\":\"" +
                  Uri + "\",\"languageId\":\"python\",\"version\":1,\"text\":";
  json::appendQuoted(B, Source);
  B += "}}}";
  return B;
}

std::string didChangeBody(const std::string &Uri, const std::string &Source) {
  std::string B =
      "{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didChange\","
      "\"params\":{\"textDocument\":{\"uri\":\"" +
      Uri + "\",\"version\":2},\"contentChanges\":[{\"text\":";
  json::appendQuoted(B, Source);
  B += "}]}}";
  return B;
}

} // namespace

TEST_F(LspSessionTest, FullSessionPublishesMatchingDigests) {
  Predictor P = makePredictor();
  // The reference digests, computed through the same entry point the CLI
  // uses — over a predictor the session never touches.
  Predictor Ref = makePredictor();
  const CorpusFile &Doc = WB->Files[WB->Files.size() - 1];
  std::string Expect = strformat(
      "%016llx", static_cast<unsigned long long>(predictionDigest(
                     Ref.predictSource(Doc.Path, Doc.Source))));
  std::string Edited = Doc.Source + "\n\ndef appended(x: int) -> int:\n"
                                    "    y = x\n    return y\n";
  std::string ExpectEdited = strformat(
      "%016llx", static_cast<unsigned long long>(predictionDigest(
                     Ref.predictSource(Doc.Path, Edited))));

  SessionHarness H(P);
  H.request("{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"initialize\","
            "\"params\":{\"capabilities\":{}}}");
  json::Value Init = H.read();
  ASSERT_NE(Init.find("result"), nullptr);
  const json::Value *Caps = Init.find("result")->find("capabilities");
  ASSERT_NE(Caps, nullptr);
  EXPECT_EQ(Caps->getInt("textDocumentSync", -1), 1);
  H.request("{\"jsonrpc\":\"2.0\",\"method\":\"initialized\",\"params\":{}}");

  // didOpen: diagnostics + the typilus/types digest, which must equal
  // `typilus_cli predict --source` over the same bytes.
  std::string Uri = pathToUri(Doc.Path);
  uint64_t Embeds = P.embedCalls();
  H.request(didOpenBody(Uri, Doc.Source));
  json::Value Diags = H.readUntil("textDocument/publishDiagnostics");
  EXPECT_EQ(Diags.find("params")->getString("uri", ""), Uri);
  json::Value Types = H.readUntil("typilus/types");
  const json::Value *TP = Types.find("params");
  ASSERT_NE(TP, nullptr);
  EXPECT_EQ(TP->getString("uri", ""), Uri);
  EXPECT_EQ(TP->getString("digest", ""), Expect);
  ASSERT_NE(TP->find("predictions"), nullptr);
  EXPECT_FALSE(TP->find("predictions")->array().empty());
  EXPECT_EQ(P.embedCalls(), Embeds + 1) << "didOpen must embed one file";

  // didChange with edited text: a fresh digest, again matching the
  // reference path, and again exactly one encoder pass.
  H.request(didChangeBody(Uri, Edited));
  json::Value Types2 = H.readUntil("typilus/types");
  EXPECT_EQ(Types2.find("params")->getString("digest", ""), ExpectEdited);
  EXPECT_NE(Types2.find("params")->getString("digest", ""), Expect);
  EXPECT_EQ(P.embedCalls(), Embeds + 2) << "didChange must embed one file";

  // didClose retires the document's markers and clears its diagnostics.
  H.request("{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didClose\","
            "\"params\":{\"textDocument\":{\"uri\":\"" +
            Uri + "\"}}}");
  json::Value Cleared = H.readUntil("textDocument/publishDiagnostics");
  EXPECT_TRUE(Cleared.find("params")->find("diagnostics")->array().empty());

  // Orderly shutdown: null response, then exit -> run() returns 0.
  H.request("{\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"shutdown\"}");
  json::Value Shut = H.read();
  EXPECT_EQ(Shut.getInt("id", -1), 2);
  H.request("{\"jsonrpc\":\"2.0\",\"method\":\"exit\"}");
  EXPECT_EQ(H.finish(), 0);
}

TEST_F(LspSessionTest, UnknownMethodGetsMethodNotFound) {
  Predictor P = makePredictor();
  SessionHarness H(P);
  H.request("{\"jsonrpc\":\"2.0\",\"id\":7,\"method\":\"workspace/symbol\"}");
  json::Value Resp = H.read();
  EXPECT_EQ(Resp.getInt("id", -1), 7);
  const json::Value *Err = Resp.find("error");
  ASSERT_NE(Err, nullptr);
  EXPECT_EQ(Err->getInt("code", 0), -32601);
}

TEST_F(LspSessionTest, MalformedJsonGetsParseError) {
  Predictor P = makePredictor();
  SessionHarness H(P);
  H.request("{\"jsonrpc\": nope");
  json::Value Resp = H.read();
  const json::Value *Err = Resp.find("error");
  ASSERT_NE(Err, nullptr);
  EXPECT_EQ(Err->getInt("code", 0), -32700);
}

TEST_F(LspSessionTest, EofWithoutShutdownExitsNonZero) {
  Predictor P = makePredictor();
  SessionHarness H(P);
  H.request("{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"initialize\","
            "\"params\":{}}");
  H.read();
  // Client vanishes without shutdown: the spec mandates a non-zero code.
  EXPECT_EQ(H.finish(), 1);
}
