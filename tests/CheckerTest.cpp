//===- tests/CheckerTest.cpp - checker/ unit tests -----------------------------===//

#include "checker/Checker.h"
#include "pyfront/Parser.h"
#include "pyfront/SymbolTable.h"

#include <gtest/gtest.h>

using namespace typilus;

namespace {

class CheckerTest : public ::testing::Test {
protected:
  CheckerTest() : H(U) {}

  std::vector<TypeError> runCheck(const std::string &Src,
                                  bool InferLocals = false) {
    PF = parseFile("t.py", Src);
    EXPECT_TRUE(PF.Diags.empty()) << "parse errors in test source";
    ST = SymbolTable();
    buildSymbolTable(PF, ST);
    Checker C(U, H, CheckerOptions{InferLocals});
    return C.check(PF, ST);
  }

  bool hasError(const std::vector<TypeError> &Errs, const std::string &Code) {
    for (const TypeError &E : Errs)
      if (E.Code == Code)
        return true;
    return false;
  }

  TypeUniverse U;
  TypeHierarchy H;
  ParsedFile PF;
  SymbolTable ST;
};

} // namespace

TEST_F(CheckerTest, CleanProgramHasNoErrors) {
  auto Errs = runCheck("def add(a: int, b: int) -> int:\n"
                       "    total: int = a + b\n"
                       "    return total\n");
  EXPECT_TRUE(Errs.empty());
}

TEST_F(CheckerTest, CatchesBadAnnotatedAssignment) {
  auto Errs = runCheck("count: int = 'not a number'\n");
  EXPECT_TRUE(hasError(Errs, "assignment"));
}

TEST_F(CheckerTest, NumericTowerIsPermissive) {
  EXPECT_TRUE(runCheck("x: float = 3\n").empty());   // int -> float ok
  EXPECT_TRUE(runCheck("b: int = True\n").empty());  // bool -> int ok
  EXPECT_TRUE(hasError(runCheck("n: int = 1.5\n"), "assignment"));
}

TEST_F(CheckerTest, CatchesBadReturnValue) {
  auto Errs = runCheck("def get_name() -> str:\n"
                       "    return 42\n");
  EXPECT_TRUE(hasError(Errs, "return-value"));
}

TEST_F(CheckerTest, CatchesBadArgument) {
  auto Errs = runCheck("def scale(v: float) -> float:\n"
                       "    return v\n"
                       "r: float = scale('oops')\n");
  EXPECT_TRUE(hasError(Errs, "arg-type"));
}

TEST_F(CheckerTest, ChecksKeywordArguments) {
  auto Errs = runCheck("def f(flag: bool) -> bool:\n"
                       "    return flag\n"
                       "r: bool = f(flag='no')\n");
  EXPECT_TRUE(hasError(Errs, "arg-type"));
}

TEST_F(CheckerTest, CatchesStrPlusInt) {
  auto Errs = runCheck("s: str = 'a'\nr = s + 1\n");
  EXPECT_TRUE(hasError(Errs, "operator"));
}

TEST_F(CheckerTest, ListAppendChecksElementType) {
  auto Errs = runCheck("xs: List[int] = []\nxs.append('bad')\n");
  EXPECT_TRUE(hasError(Errs, "arg-type"));
  EXPECT_TRUE(runCheck("xs: List[int] = []\nxs.append(3)\n").empty());
}

TEST_F(CheckerTest, IterationRequiresIterable) {
  auto Errs = runCheck("n: int = 5\nfor x in n:\n    pass\n");
  EXPECT_TRUE(hasError(Errs, "not-iterable"));
  EXPECT_TRUE(runCheck("xs: List[int] = [1]\nfor x in xs:\n    pass\n")
                  .empty());
}

TEST_F(CheckerTest, BadParameterDefault) {
  auto Errs = runCheck("def f(n: int = 'zero') -> int:\n    return n\n");
  EXPECT_TRUE(hasError(Errs, "assignment"));
}

TEST_F(CheckerTest, MethodReturnTypesPropagate) {
  auto Errs = runCheck("class Box:\n"
                       "    def __init__(self, w: int) -> None:\n"
                       "        self.w: int = w\n"
                       "    def get_w(self) -> int:\n"
                       "        return self.w\n"
                       "b: Box = Box(3)\n"
                       "label: str = b.get_w()\n");
  EXPECT_TRUE(hasError(Errs, "assignment"));
}

TEST_F(CheckerTest, UnannotatedReceiverIsAnyInStrictMode) {
  // Without the annotation, strict (mypy-like) mode cannot know b's type,
  // so it stays silent — the inferring (pytype-like) mode catches it.
  const std::string Src = "class Box:\n"
                          "    def __init__(self, w: int) -> None:\n"
                          "        self.w: int = w\n"
                          "    def get_w(self) -> int:\n"
                          "        return self.w\n"
                          "b = Box(3)\n"
                          "label: str = b.get_w()\n";
  EXPECT_FALSE(hasError(runCheck(Src, false), "assignment"));
  EXPECT_TRUE(hasError(runCheck(Src, true), "assignment"));
}

TEST_F(CheckerTest, ConstructorArgumentsChecked) {
  auto Errs = runCheck("class Box:\n"
                       "    def __init__(self, w: int) -> None:\n"
                       "        self.w: int = w\n"
                       "b = Box('wide')\n");
  EXPECT_TRUE(hasError(Errs, "arg-type"));
}

TEST_F(CheckerTest, StrMethodTableWorks) {
  EXPECT_TRUE(runCheck("s: str = 'a'\nparts: List[str] = s.split()\n")
                  .empty());
  EXPECT_TRUE(hasError(
      runCheck("s: str = 'a'\nn: int = s.strip()\n"), "assignment"));
}

TEST_F(CheckerTest, OptionalAcceptsNoneAndValue) {
  EXPECT_TRUE(runCheck("x: Optional[int] = None\n").empty());
  EXPECT_TRUE(runCheck("x: Optional[int] = 3\n").empty());
  EXPECT_TRUE(
      hasError(runCheck("x: Optional[int] = 'no'\n"), "assignment"));
}

TEST_F(CheckerTest, UnknownCallsAreAny) {
  // Local reasoning: unknown APIs must not produce false positives.
  EXPECT_TRUE(runCheck("import magic\nx: int = magic.make()\n").empty());
}

//===----------------------------------------------------------------------===//
// Strict (mypy-like) vs inferring (pytype-like) modes
//===----------------------------------------------------------------------===//

TEST_F(CheckerTest, InferringModeCatchesUnannotatedInconsistency) {
  const std::string Src = "x = 3\n"      // inferred int
                          "y: str = x\n"; // str := int
  // Strict mode: x is Any, nothing detectable.
  EXPECT_TRUE(runCheck(Src, /*InferLocals=*/false).empty());
  // Inferring mode: x was inferred int -> error.
  EXPECT_TRUE(hasError(runCheck(Src, /*InferLocals=*/true), "assignment"));
}

TEST_F(CheckerTest, InferringModeNeverMissesStrictErrors) {
  // The inferring mode dominates the strict mode on any program: whatever
  // strict flags, inferring flags too (the Table 5 ordering).
  const std::string Bad = "def f(n: int) -> str:\n"
                          "    return n\n"
                          "v = f(1)\n"
                          "w: int = 'x'\n";
  auto Strict = runCheck(Bad, false);
  auto Infer = runCheck(Bad, true);
  EXPECT_GE(Infer.size(), Strict.size());
  EXPECT_FALSE(Strict.empty());
}

TEST_F(CheckerTest, ErrorsCarryLinesAndCodes) {
  auto Errs = runCheck("a: int = 1\nb: int = 'two'\n");
  ASSERT_FALSE(Errs.empty());
  EXPECT_EQ(Errs[0].Line, 2);
  EXPECT_EQ(Errs[0].Code, "assignment");
  EXPECT_FALSE(Errs[0].Message.empty());
}

TEST_F(CheckerTest, SymbolTableOverrideChangesOutcome) {
  // The Table 5 substitution protocol: overriding a symbol's annotation
  // in the symbol table must drive the verdict.
  PF = parseFile("t.py", "def f(n: int) -> int:\n    return n\nr = f(2)\n");
  ASSERT_TRUE(PF.Diags.empty());
  ST = SymbolTable();
  buildSymbolTable(PF, ST);
  Checker C(U, H, CheckerOptions{false});
  EXPECT_TRUE(C.check(PF, ST).empty());
  // Override the parameter annotation with a wrong prediction.
  for (size_t I = 0; I != ST.size(); ++I)
    if (ST[I]->Name == "n" && ST[I]->Kind == SymbolKind::Parameter)
      ST[I]->AnnotationText = "str";
  EXPECT_FALSE(C.check(PF, ST).empty());
}
