import functools


# Decorators are outside the supported pyfront subset: this file is
# fixture material for the skip-and-report ingestion path.
@functools.lru_cache(maxsize=None)
def cached_answer(question: str) -> int:
    return len(question)
