from typing import Dict, List, Optional, Tuple

from pkg.models import Batch
from pkg.util import longest


def make_batches(paths: List[str], width: int) -> List[Batch]:
    batches: List[Batch] = []
    sizes: List[int] = []
    for path in paths:
        sizes.append(len(path))
        if len(sizes) == width:
            batches.append(Batch(path, sizes))
            sizes = []
    return batches


def best_name(paths: List[str]) -> str:
    return longest(paths)


def schedule(epochs: int, warmup: int) -> List[Tuple[int, float]]:
    steps: List[Tuple[int, float]] = []
    epoch: int = 0
    while epoch < epochs:
        rate: float = 0.1
        if epoch < warmup:
            rate = 0.01
        steps.append((epoch, rate))
        epoch = epoch + 1
    return steps


def lookup(table: Dict[str, int], key: str) -> Optional[int]:
    if key in table:
        return table[key]
    return None
