from typing import Dict, List


def accuracy(truths: List[str], guesses: List[str]) -> float:
    hits: int = 0
    index: int = 0
    for truth in truths:
        if guesses[index] == truth:
            hits = hits + 1
        index = index + 1
    if index == 0:
        return 0.0
    return hits / index


def confusion(truths: List[str], guesses: List[str]) -> Dict[str, int]:
    table: Dict[str, int] = {}
    index: int = 0
    for truth in truths:
        guess: str = guesses[index]
        if guess != truth:
            table[guess] = index
        index = index + 1
    return table
