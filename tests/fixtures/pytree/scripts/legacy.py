from typing import Optional


def read_config(path: str) -> Optional[str]:
    # try/except is outside the supported pyfront subset: this file is
    # fixture material for the skip-and-report ingestion path.
    try:
        handle = open(path)
        return handle.read()
    except OSError:
        return None
