from typing import List, Tuple


class Record:
    def __init__(self, path: str, size: int) -> None:
        self.path: str = path
        self.stored_size: int = size

    def name(self) -> str:
        return self.path

    def size(self) -> int:
        return self.stored_size


class Batch(Record):
    def __init__(self, path: str, sizes: List[int]) -> None:
        self.path: str = path
        self.sizes: List[int] = sizes

    def bounds(self) -> Tuple[int, int]:
        low: int = 0
        high: int = 0
        for size in self.sizes:
            if size > high:
                high = size
        return (low, high)
