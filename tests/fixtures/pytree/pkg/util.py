from typing import Dict, List, Set


def dedupe(words: List[str]) -> Set[str]:
    seen: Set[str] = set()
    for word in words:
        seen.add(word)
    return seen


def count_lengths(words: List[str]) -> Dict[str, int]:
    lengths: Dict[str, int] = {}
    for word in words:
        lengths[word] = len(word)
    return lengths


def longest(words: List[str]) -> str:
    best: str = ''
    for word in words:
        if len(word) > len(best):
            best = word
    return best
