from typing import Dict, List, Optional

from pkg.models import Record


def load_records(paths: List[str], limit: int) -> List[Record]:
    out: List[Record] = []
    count: int = 0
    for path in paths:
        if count == limit:
            break
        out.append(Record(path, count))
        count = count + 1
    return out


def summarize(records: List[Record]) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for record in records:
        totals[record.name()] = record.size()
    return totals


def pick(records: List[Record], name: str) -> Optional[Record]:
    for record in records:
        if record.name() == name:
            return record
    return None


default_limit: int = 16
banner: str = 'typilus fixture tree'
