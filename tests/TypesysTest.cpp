//===- tests/TypesysTest.cpp - typesys/ unit tests --------------------------===//

#include "typesys/Hierarchy.h"
#include "typesys/Type.h"

#include <gtest/gtest.h>

using namespace typilus;

namespace {

class TypesysTest : public ::testing::Test {
protected:
  TypeUniverse U;
};

class HierarchyTest : public ::testing::Test {
protected:
  HierarchyTest() : H(U) {}
  TypeUniverse U;
  TypeHierarchy H;
};

} // namespace

//===----------------------------------------------------------------------===//
// Interning, parsing and printing
//===----------------------------------------------------------------------===//

TEST_F(TypesysTest, InterningGivesPointerIdentity) {
  EXPECT_EQ(U.parse("int"), U.parse("int"));
  EXPECT_EQ(U.parse("List[int]"), U.parse("List[ int ]"));
  EXPECT_NE(U.parse("List[int]"), U.parse("List[str]"));
}

TEST_F(TypesysTest, ParsesNestedParametricTypes) {
  TypeRef T = U.parse("Dict[str, List[int]]");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->str(), "Dict[str, List[int]]");
  EXPECT_EQ(T->name(), "Dict");
  ASSERT_EQ(T->args().size(), 2u);
  EXPECT_EQ(T->args()[1]->name(), "List");
}

TEST_F(TypesysTest, ParsesDottedNames) {
  TypeRef T = U.parse("torch.Tensor");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->name(), "torch.Tensor");
}

TEST_F(TypesysTest, ParsesEllipsisAndCallable) {
  TypeRef T = U.parse("Callable[..., int]");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->args().size(), 2u);
  EXPECT_EQ(T->args()[0]->name(), "...");
}

TEST_F(TypesysTest, ParsesCallableParamList) {
  TypeRef T = U.parse("Callable[[int, str], bool]");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->str(), "Callable[[int, str], bool]");
}

TEST_F(TypesysTest, RejectsMalformedTypes) {
  EXPECT_EQ(U.parse(""), nullptr);
  EXPECT_EQ(U.parse("List["), nullptr);
  EXPECT_EQ(U.parse("List[int"), nullptr);
  EXPECT_EQ(U.parse("List[int]]"), nullptr);
  EXPECT_EQ(U.parse("[int"), nullptr);
}

TEST_F(TypesysTest, DepthIsNestingLevel) {
  EXPECT_EQ(U.parse("int")->depth(), 1);
  EXPECT_EQ(U.parse("List[int]")->depth(), 2);
  EXPECT_EQ(U.parse("Dict[str, List[int]]")->depth(), 3);
}

//===----------------------------------------------------------------------===//
// Union / Optional normalisation
//===----------------------------------------------------------------------===//

TEST_F(TypesysTest, UnionIsOrderInsensitive) {
  EXPECT_EQ(U.parse("Union[int, str]"), U.parse("Union[str, int]"));
}

TEST_F(TypesysTest, UnionFlattensAndDedups) {
  EXPECT_EQ(U.parse("Union[int, Union[str, int]]"), U.parse("Union[int, str]"));
  EXPECT_EQ(U.parse("Union[int, int]"), U.parse("int"));
}

TEST_F(TypesysTest, UnionWithNoneIsOptional) {
  EXPECT_EQ(U.parse("Union[int, None]"), U.parse("Optional[int]"));
  EXPECT_EQ(U.parse("Union[None, int, str]"),
            U.parse("Optional[Union[int, str]]"));
}

TEST_F(TypesysTest, OptionalOfOptionalCollapses) {
  EXPECT_EQ(U.parse("Optional[Optional[int]]"), U.parse("Optional[int]"));
}

TEST_F(TypesysTest, OptionalOfNoneIsNone) {
  EXPECT_EQ(U.parse("Optional[None]"), U.none());
}

//===----------------------------------------------------------------------===//
// Erasure and depth rewriting
//===----------------------------------------------------------------------===//

TEST_F(TypesysTest, EraseDropsAllParameters) {
  EXPECT_EQ(U.erase(U.parse("List[int]"))->str(), "List");
  EXPECT_EQ(U.erase(U.parse("Dict[str, List[int]]"))->str(), "Dict");
  EXPECT_EQ(U.erase(U.parse("int"))->str(), "int");
}

TEST_F(TypesysTest, RewriteDeepMatchesPaperExample) {
  // Sec. 6.1: List[List[List[int]]] -> List[List[Any]].
  EXPECT_EQ(U.rewriteDeep(U.parse("List[List[List[int]]]")),
            U.parse("List[List[Any]]"));
}

TEST_F(TypesysTest, RewriteDeepKeepsShallowTypes) {
  EXPECT_EQ(U.rewriteDeep(U.parse("List[int]")), U.parse("List[int]"));
  EXPECT_EQ(U.rewriteDeep(U.parse("int")), U.parse("int"));
}

TEST_F(TypesysTest, ExcludedAnnotations) {
  EXPECT_TRUE(U.isExcludedAnnotation(U.any()));
  EXPECT_TRUE(U.isExcludedAnnotation(U.none()));
  EXPECT_FALSE(U.isExcludedAnnotation(U.parse("int")));
}

//===----------------------------------------------------------------------===//
// Subtyping
//===----------------------------------------------------------------------===//

TEST_F(HierarchyTest, NumericTower) {
  EXPECT_TRUE(H.isSubtype(U.parse("bool"), U.parse("int")));
  EXPECT_TRUE(H.isSubtype(U.parse("int"), U.parse("float")));
  EXPECT_TRUE(H.isSubtype(U.parse("bool"), U.parse("float")));
  EXPECT_FALSE(H.isSubtype(U.parse("float"), U.parse("int")));
}

TEST_F(HierarchyTest, EverythingUnderObject) {
  EXPECT_TRUE(H.isSubtype(U.parse("str"), U.object()));
  EXPECT_TRUE(H.isSubtype(U.parse("List[int]"), U.object()));
}

TEST_F(HierarchyTest, AnyIsBidirectional) {
  EXPECT_TRUE(H.isSubtype(U.any(), U.parse("int")));
  EXPECT_TRUE(H.isSubtype(U.parse("int"), U.any()));
}

TEST_F(HierarchyTest, UniversalCovariance) {
  EXPECT_TRUE(H.isSubtype(U.parse("List[bool]"), U.parse("List[int]")));
  EXPECT_FALSE(H.isSubtype(U.parse("List[str]"), U.parse("List[int]")));
}

TEST_F(HierarchyTest, ParametricUnderBareConstructor) {
  EXPECT_TRUE(H.isSubtype(U.parse("List[int]"), U.parse("List")));
  EXPECT_TRUE(H.isSubtype(U.parse("List"), U.parse("List[int]")));
}

TEST_F(HierarchyTest, ContainerProtocolHierarchy) {
  EXPECT_TRUE(H.isSubtype(U.parse("List[int]"), U.parse("Sequence[int]")));
  EXPECT_TRUE(H.isSubtype(U.parse("Dict[str, int]"), U.parse("Mapping")));
  EXPECT_TRUE(H.isSubtype(U.parse("List[int]"), U.parse("Iterable[int]")));
  EXPECT_FALSE(H.isSubtype(U.parse("Sequence[int]"), U.parse("List[int]")));
}

TEST_F(HierarchyTest, ListLowercaseAliasesList) {
  EXPECT_TRUE(H.isSubtype(U.parse("list"), U.parse("List")));
  EXPECT_TRUE(H.isSubtype(U.parse("List[int]"), U.parse("list")));
}

TEST_F(HierarchyTest, UnionRules) {
  EXPECT_TRUE(H.isSubtype(U.parse("int"), U.parse("Union[int, str]")));
  EXPECT_TRUE(
      H.isSubtype(U.parse("Union[int, bool]"), U.parse("Union[int, str]")));
  EXPECT_FALSE(H.isSubtype(U.parse("Union[int, str]"), U.parse("int")));
}

TEST_F(HierarchyTest, OptionalRules) {
  EXPECT_TRUE(H.isSubtype(U.parse("int"), U.parse("Optional[int]")));
  EXPECT_TRUE(H.isSubtype(U.none(), U.parse("Optional[int]")));
  EXPECT_FALSE(H.isSubtype(U.parse("Optional[int]"), U.parse("int")));
}

TEST_F(HierarchyTest, UserDefinedClasses) {
  H.addClass("Animal");
  H.addClass("Dog", {"Animal"});
  H.addClass("Puppy", {"Dog"});
  EXPECT_TRUE(H.isSubtype(U.parse("Puppy"), U.parse("Animal")));
  EXPECT_FALSE(H.isSubtype(U.parse("Animal"), U.parse("Puppy")));
  EXPECT_TRUE(H.isSubtype(U.parse("List[Dog]"), U.parse("List[Animal]")));
}

TEST_F(HierarchyTest, MultipleInheritance) {
  H.addClass("A");
  H.addClass("B");
  H.addClass("C", {"A", "B"});
  EXPECT_TRUE(H.isSubtype(U.parse("C"), U.parse("A")));
  EXPECT_TRUE(H.isSubtype(U.parse("C"), U.parse("B")));
}

//===----------------------------------------------------------------------===//
// Type neutrality (the paper's evaluation criterion)
//===----------------------------------------------------------------------===//

TEST_F(HierarchyTest, ExactTypeIsNeutral) {
  EXPECT_TRUE(H.isNeutral(U.parse("int"), U.parse("int")));
}

TEST_F(HierarchyTest, SupertypePredictionIsNeutral) {
  EXPECT_TRUE(H.isNeutral(U.parse("bool"), U.parse("int")));
  EXPECT_TRUE(H.isNeutral(U.parse("List[int]"), U.parse("Sequence[int]")));
}

TEST_F(HierarchyTest, SubtypePredictionIsNotNeutral) {
  EXPECT_FALSE(H.isNeutral(U.parse("int"), U.parse("bool")));
}

TEST_F(HierarchyTest, TopPredictionIsNeverNeutral) {
  // τp != ⊤ is required even though τg :< object always holds.
  EXPECT_FALSE(H.isNeutral(U.parse("int"), U.object()));
  EXPECT_FALSE(H.isNeutral(U.parse("int"), U.any()));
}

TEST_F(HierarchyTest, NeutralityUsesDepthRewriting) {
  // Both sides collapse to List[List[Any]] after rewriting.
  EXPECT_TRUE(H.isNeutral(U.parse("List[List[List[int]]]"),
                          U.parse("List[List[List[str]]]")));
}
