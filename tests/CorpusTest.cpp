//===- tests/CorpusTest.cpp - corpus/ unit tests -------------------------------===//

#include "checker/Checker.h"
#include "corpus/Dataset.h"
#include "corpus/Dedup.h"
#include "corpus/Generator.h"
#include "pyfront/Parser.h"
#include "typesys/Hierarchy.h"

#include <gtest/gtest.h>

#include <set>

using namespace typilus;

namespace {

CorpusConfig smallConfig() {
  CorpusConfig C;
  C.NumFiles = 30;
  return C;
}

} // namespace

TEST(GeneratorTest, AllFilesParseCleanly) {
  CorpusGenerator G(smallConfig());
  for (const CorpusFile &F : G.generate()) {
    ParsedFile PF = parseFile(F.Path, F.Source);
    EXPECT_TRUE(PF.Diags.empty()) << F.Path << ":\n" << F.Source;
  }
}

TEST(GeneratorTest, DeterministicForFixedSeed) {
  CorpusGenerator A(smallConfig()), B(smallConfig());
  auto FA = A.generate(), FB = B.generate();
  ASSERT_EQ(FA.size(), FB.size());
  for (size_t I = 0; I != FA.size(); ++I)
    EXPECT_EQ(FA[I].Source, FB[I].Source);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  CorpusConfig C1 = smallConfig(), C2 = smallConfig();
  C2.Seed ^= 0xDEAD;
  CorpusGenerator A(C1), B(C2);
  EXPECT_NE(A.generate()[0].Source, B.generate()[0].Source);
}

TEST(GeneratorTest, EmitsRequestedUdtCount) {
  CorpusConfig C = smallConfig();
  C.NumUdts = 37;
  CorpusGenerator G(C);
  EXPECT_EQ(G.udts().size(), 37u);
  std::set<std::string> Names;
  for (const UdtSpec &U : G.udts())
    Names.insert(U.Name);
  EXPECT_EQ(Names.size(), 37u) << "UDT names must be unique";
}

TEST(GeneratorTest, SomeUdtsInherit) {
  CorpusConfig C = smallConfig();
  C.NumUdts = 60;
  CorpusGenerator G(C);
  int WithBase = 0;
  for (const UdtSpec &U : G.udts())
    WithBase += !U.Base.empty();
  EXPECT_GT(WithBase, 0);
}

TEST(GeneratorTest, GeneratedProgramsTypeCheckCleanly) {
  // The whole-corpus invariant behind the Table 5 protocol.
  CorpusGenerator G(smallConfig());
  TypeUniverse U;
  TypeHierarchy H(U);
  for (const UdtSpec &Udt : G.udts())
    H.addClass(Udt.Name, Udt.Base.empty()
                             ? std::vector<std::string>{}
                             : std::vector<std::string>{Udt.Base});
  Checker Check(U, H, CheckerOptions{/*InferLocals=*/false});
  for (const CorpusFile &F : G.generate()) {
    ParsedFile PF = parseFile(F.Path, F.Source);
    SymbolTable ST;
    buildSymbolTable(PF, ST);
    auto Errs = Check.check(PF, ST);
    EXPECT_TRUE(Errs.empty()) << F.Path << ": " << Errs.size()
                              << " baseline errors, first: "
                              << (Errs.empty() ? "" : Errs[0].Message);
  }
}

//===----------------------------------------------------------------------===//
// Dedup
//===----------------------------------------------------------------------===//

TEST(DedupTest, FindsPlantedDuplicates) {
  CorpusConfig C = smallConfig();
  C.DuplicateFraction = 0.2;
  CorpusGenerator G(C);
  auto Files = G.generate();
  auto Drop = findNearDuplicates(Files);
  // ~20% of 30 files were emitted as comment-only-different copies.
  EXPECT_GE(Drop.size(), 4u);
}

TEST(DedupTest, CleanCorpusMostlySurvives) {
  CorpusConfig C = smallConfig();
  C.DuplicateFraction = 0.0;
  CorpusGenerator G(C);
  auto Files = G.generate();
  auto Drop = findNearDuplicates(Files);
  EXPECT_LE(Drop.size(), Files.size() / 5);
}

TEST(DedupTest, CommentOnlyChangesAreStillDuplicates) {
  std::vector<CorpusFile> Files;
  Files.push_back(CorpusFile{"a.py", "x = 1\ny = x + 2\nz = y * 3\n"});
  Files.push_back(CorpusFile{
      "b.py", "# totally different comment\nx = 1\ny = x + 2\nz = y * 3\n"});
  auto Drop = findNearDuplicates(Files, 0.8);
  ASSERT_EQ(Drop.size(), 1u);
  EXPECT_EQ(Drop[0], 1u); // the first exemplar is kept
}

TEST(DedupTest, DistinctFilesAreKept) {
  std::vector<CorpusFile> Files;
  Files.push_back(CorpusFile{"a.py", "def f(a):\n    return a + 1\n"});
  Files.push_back(
      CorpusFile{"b.py", "class C:\n    def m(self):\n        pass\n"});
  EXPECT_TRUE(findNearDuplicates(Files).empty());
}

//===----------------------------------------------------------------------===//
// Dataset
//===----------------------------------------------------------------------===//

TEST(DatasetTest, SplitsRoughly70_10_20) {
  CorpusConfig C = smallConfig();
  C.NumFiles = 100;
  C.DuplicateFraction = 0;
  CorpusGenerator G(C);
  TypeUniverse U;
  DatasetConfig DC;
  DC.RunDedup = false;
  Dataset DS = buildDataset(G.generate(), G.udts(), U, nullptr, DC);
  EXPECT_EQ(DS.Train.size(), 70u);
  EXPECT_EQ(DS.Valid.size(), 10u);
  EXPECT_EQ(DS.Test.size(), 20u);
}

TEST(DatasetTest, TargetsHaveResolvedTypes) {
  CorpusGenerator G(smallConfig());
  TypeUniverse U;
  DatasetConfig DC;
  Dataset DS = buildDataset(G.generate(), G.udts(), U, nullptr, DC);
  size_t N = 0;
  for (const FileExample &F : DS.Train)
    for (const Target &T : F.Targets) {
      ++N;
      ASSERT_NE(T.Type, nullptr);
      ASSERT_NE(T.ErasedType, nullptr);
      EXPECT_EQ(T.ErasedType, U.erase(T.Type));
      EXPECT_FALSE(U.isExcludedAnnotation(T.Type));
      EXPECT_GE(T.NodeIdx, 0);
    }
  EXPECT_GT(N, 100u);
}

TEST(DatasetTest, RegistersUdtsInHierarchy) {
  CorpusGenerator G(smallConfig());
  TypeUniverse U;
  TypeHierarchy H(U);
  DatasetConfig DC;
  buildDataset(G.generate(), G.udts(), U, &H, DC);
  ASSERT_FALSE(G.udts().empty());
  const UdtSpec &First = G.udts().front();
  EXPECT_TRUE(H.knowsName(First.Name));
  EXPECT_TRUE(H.isSubtype(U.parse(First.Name), U.object()));
}

TEST(DatasetTest, RareSplitRespectsThreshold) {
  CorpusGenerator G(smallConfig());
  TypeUniverse U;
  DatasetConfig DC;
  DC.CommonThreshold = 10;
  Dataset DS = buildDataset(G.generate(), G.udts(), U, nullptr, DC);
  for (const auto &[T, N] : DS.TrainTypeCounts)
    EXPECT_EQ(DS.isRare(T), N < 10);
  // A type never seen in training is rare by definition.
  EXPECT_TRUE(DS.isRare(U.parse("NeverSeenAnywhereType")));
}

TEST(DatasetTest, ReturnSymbolsAmongTargets) {
  CorpusGenerator G(smallConfig());
  TypeUniverse U;
  DatasetConfig DC;
  Dataset DS = buildDataset(G.generate(), G.udts(), U, nullptr, DC);
  bool SawReturn = false, SawParam = false, SawVar = false;
  for (const FileExample &F : DS.Train)
    for (const Target &T : F.Targets) {
      SawReturn |= T.Kind == SymbolKind::Return;
      SawParam |= T.Kind == SymbolKind::Parameter;
      SawVar |= T.Kind == SymbolKind::Variable;
    }
  EXPECT_TRUE(SawReturn);
  EXPECT_TRUE(SawParam);
  EXPECT_TRUE(SawVar);
}
