//===- tests/ShardTest.cpp - Sharded corpus pipeline tests ---------------------===//
//
// The sharded-streaming contract: the same corpus pushed through the
// in-memory `Dataset` and through a `ShardedDataset` on disk must
// produce byte-equal examples, training digests, τmaps and predictions —
// for any shard size, LRU residency bound and thread count. Also covers
// rejection of damaged/mismatched/future-version shard sets, pin
// validity across eviction, the shard-aware shuffle's determinism, and
// mid-epoch checkpoint resume.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "corpus/Ingest.h"
#include "corpus/ShardedDataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace typilus;

namespace {

CorpusConfig tinyCorpus() {
  CorpusConfig CC;
  CC.NumFiles = 18;
  CC.NumUdts = 8;
  return CC;
}

DatasetConfig tinyDataset() {
  DatasetConfig DC;
  DC.CommonThreshold = 2;
  return DC;
}

ModelConfig tinyConfig() {
  ModelConfig MC;
  MC.Encoder = EncoderKind::Graph;
  MC.Loss = LossKind::Typilus;
  MC.HiddenDim = 8;
  MC.TimeSteps = 2;
  return MC;
}

/// Writes the tiny corpus as a shard set under TempDir and returns the
/// directory. \p FilesPerShard makes multi-shard layouts cheap to vary;
/// \p NumThreads exercises the parallel chunk builder (0 = pool default).
std::string writeTinyShards(const std::string &Name, int FilesPerShard,
                            int NumThreads = 0,
                            ShardBuildStats *Stats = nullptr) {
  // Suffixed with the pid: ctest -j runs each test of this suite as its
  // own process sharing TempDir, and same-named fixture directories would
  // clobber each other mid-test (same fix as ServeFaultTest's artifacts).
  std::string Dir = testing::TempDir() + "typilus_shards_" + Name + "_" +
                    std::to_string(static_cast<long>(getpid()));
  CorpusConfig CC = tinyCorpus();
  CorpusGenerator Gen(CC);
  std::vector<CorpusFile> Files = Gen.generate();
  TypeUniverse U;
  ShardBuildOptions SO;
  SO.Dir = Dir;
  SO.FilesPerShard = FilesPerShard;
  SO.NumThreads = NumThreads;
  std::string Err;
  EXPECT_TRUE(buildShards(Files, Gen.udts(), U, nullptr, tinyDataset(), SO,
                          &Err, Stats))
      << Err;
  return Dir;
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// Streams every example of \p Src into owned copies (pins dropped).
std::vector<FileExample> drain(ExampleSource &Src) {
  std::vector<FileExample> Out;
  ExamplePin Pin;
  for (size_t I = 0; I != Src.size(); ++I)
    Out.push_back(Src.get(I, Pin));
  return Out;
}

void expectExamplesEqual(const std::vector<FileExample> &A,
                         const std::vector<FileExample> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    const FileExample &X = A[I], &Y = B[I];
    EXPECT_EQ(X.Path, Y.Path);
    ASSERT_EQ(X.Graph.Nodes.size(), Y.Graph.Nodes.size()) << X.Path;
    for (size_t N = 0; N != X.Graph.Nodes.size(); ++N) {
      EXPECT_EQ(X.Graph.Nodes[N].Category, Y.Graph.Nodes[N].Category);
      EXPECT_EQ(X.Graph.Nodes[N].Label, Y.Graph.Nodes[N].Label);
      EXPECT_EQ(X.Graph.Nodes[N].SymbolId, Y.Graph.Nodes[N].SymbolId);
      EXPECT_EQ(X.Graph.Nodes[N].TokenIdx, Y.Graph.Nodes[N].TokenIdx);
    }
    ASSERT_EQ(X.Graph.Edges.size(), Y.Graph.Edges.size()) << X.Path;
    for (size_t E = 0; E != X.Graph.Edges.size(); ++E) {
      EXPECT_EQ(X.Graph.Edges[E].Src, Y.Graph.Edges[E].Src);
      EXPECT_EQ(X.Graph.Edges[E].Dst, Y.Graph.Edges[E].Dst);
      EXPECT_EQ(X.Graph.Edges[E].Label, Y.Graph.Edges[E].Label);
    }
    ASSERT_EQ(X.Graph.Supernodes.size(), Y.Graph.Supernodes.size()) << X.Path;
    for (size_t S = 0; S != X.Graph.Supernodes.size(); ++S) {
      EXPECT_EQ(X.Graph.Supernodes[S].NodeIdx, Y.Graph.Supernodes[S].NodeIdx);
      EXPECT_EQ(X.Graph.Supernodes[S].Name, Y.Graph.Supernodes[S].Name);
      EXPECT_EQ(X.Graph.Supernodes[S].AnnotationText,
                Y.Graph.Supernodes[S].AnnotationText);
    }
    ASSERT_EQ(X.Targets.size(), Y.Targets.size()) << X.Path;
    for (size_t T = 0; T != X.Targets.size(); ++T) {
      EXPECT_EQ(X.Targets[T].NodeIdx, Y.Targets[T].NodeIdx);
      // Different universes: types compare by canonical spelling.
      EXPECT_EQ(X.Targets[T].Type->str(), Y.Targets[T].Type->str());
      EXPECT_EQ(X.Targets[T].ErasedType->str(), Y.Targets[T].ErasedType->str());
      EXPECT_EQ(X.Targets[T].Kind, Y.Targets[T].Kind);
      EXPECT_EQ(X.Targets[T].Name, Y.Targets[T].Name);
    }
  }
}

void expectPredictionsBitIdentical(const std::vector<PredictionResult> &A,
                                   const std::vector<PredictionResult> &B) {
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(predictionDigest(A), predictionDigest(B));
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].FilePath, B[I].FilePath);
    EXPECT_EQ(A[I].TargetIdx, B[I].TargetIdx);
    ASSERT_EQ(A[I].Candidates.size(), B[I].Candidates.size()) << "row " << I;
    for (size_t C = 0; C != A[I].Candidates.size(); ++C) {
      EXPECT_EQ(A[I].Candidates[C].Type->str(), B[I].Candidates[C].Type->str());
      EXPECT_EQ(A[I].Candidates[C].Prob, B[I].Candidates[C].Prob);
    }
  }
}

void removeShardDir(const std::string &Dir) {
  for (int I = 0; I != 64; ++I) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "shard-%05d.typs", I);
    std::remove((Dir + "/" + Name).c_str());
  }
  std::remove((Dir + "/" + kShardManifestName).c_str());
  std::remove(Dir.c_str());
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trip: decoded shards equal freshly built examples
//===----------------------------------------------------------------------===//

TEST(ShardRoundTripTest, DecodedExamplesEqualBuiltOnes) {
  std::string Dir = writeTinyShards("roundtrip", 3);

  // The in-memory reference.
  Workbench WB = Workbench::make(tinyCorpus(), tinyDataset());

  // A fresh process would open with its own universe; so do we.
  TypeUniverse U2;
  std::string Err;
  ShardedDatasetOptions SO;
  SO.MaxResidentShards = 2; // force eviction mid-stream
  std::unique_ptr<ShardedDataset> SD = ShardedDataset::open(Dir, U2, SO, &Err);
  ASSERT_NE(SD, nullptr) << Err;

  EXPECT_EQ(SD->numFiles(SplitKind::Train), WB.DS.Train.size());
  EXPECT_EQ(SD->numFiles(SplitKind::Valid), WB.DS.Valid.size());
  EXPECT_EQ(SD->numFiles(SplitKind::Test), WB.DS.Test.size());

  expectExamplesEqual(drain(SD->split(SplitKind::Train)), WB.DS.Train);
  expectExamplesEqual(drain(SD->split(SplitKind::Valid)), WB.DS.Valid);
  expectExamplesEqual(drain(SD->split(SplitKind::Test)), WB.DS.Test);

  // The manifest's merged type-count sidecars equal the in-memory
  // histogram (keyed by spelling: separate universes).
  std::map<std::string, int> InMem, Sharded;
  for (const auto &[T, N] : WB.DS.TrainTypeCounts)
    InMem[T->str()] = N;
  for (const auto &[T, N] : SD->trainTypeCounts())
    Sharded[T->str()] = N;
  EXPECT_EQ(InMem, Sharded);
  EXPECT_EQ(SD->commonThreshold(), WB.DS.CommonThreshold);

  removeShardDir(Dir);
}

TEST(ShardRoundTripTest, PinsSurviveEviction) {
  std::string Dir = writeTinyShards("pins", 2);
  TypeUniverse U;
  std::string Err;
  ShardedDatasetOptions SO;
  SO.MaxResidentShards = 1;
  std::unique_ptr<ShardedDataset> SD = ShardedDataset::open(Dir, U, SO, &Err);
  ASSERT_NE(SD, nullptr) << Err;

  ExampleSource &Train = SD->split(SplitKind::Train);
  ASSERT_GT(Train.size(), 4u);

  // Pin the first example, then stream the whole split so its shard is
  // long evicted; the pinned reference must stay intact (ASan would
  // catch a dangling read).
  ExamplePin Pin;
  const FileExample &First = Train.get(0, Pin);
  std::string Path = First.Path;
  size_t Nodes = First.Graph.numNodes();
  ExamplePin Walk;
  for (size_t I = 0; I != Train.size(); ++I)
    (void)Train.get(I, Walk);
  EXPECT_GT(SD->decodeCount(), SD->residentShards());
  EXPECT_LE(SD->residentShards(), 1u);
  EXPECT_EQ(First.Path, Path);
  EXPECT_EQ(First.Graph.numNodes(), Nodes);

  removeShardDir(Dir);
}

//===----------------------------------------------------------------------===//
// Bit-identity: training, τmap, predictions — in-memory vs sharded
//===----------------------------------------------------------------------===//

class ShardBitIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardBitIdentityTest, TrainingTauMapAndPredictionsMatchInMemory) {
  int Threads = GetParam();
  std::string Dir = writeTinyShards("bitid_t" + std::to_string(Threads), 3);
  ModelConfig MC = tinyConfig();
  TrainOptions TO;
  TO.Epochs = 2;
  TO.BatchFiles = 4;
  TO.NumThreads = Threads;
  KnnOptions KO;
  KO.NumThreads = Threads;

  // In-memory reference run.
  Workbench WB = Workbench::make(tinyCorpus(), tinyDataset());
  std::unique_ptr<TypeModel> RefModel = makeModel(MC, WB.DS, *WB.U);
  double RefLoss = trainModel(*RefModel, WB.DS.Train, TO);
  std::vector<const FileExample *> MapFiles;
  for (const FileExample &F : WB.DS.Train)
    MapFiles.push_back(&F);
  for (const FileExample &F : WB.DS.Valid)
    MapFiles.push_back(&F);
  Predictor RefP = Predictor::knn(*RefModel, MapFiles, KO);
  std::vector<PredictionResult> RefPreds = RefP.predictAll(WB.DS.Test);

  // Sharded run: fresh universe, tight residency, multi-shard layout.
  TypeUniverse U2;
  std::string Err;
  ShardedDatasetOptions SO;
  SO.MaxResidentShards = 2;
  std::unique_ptr<ShardedDataset> SD = ShardedDataset::open(Dir, U2, SO, &Err);
  ASSERT_NE(SD, nullptr) << Err;
  ExampleSource &Train = SD->split(SplitKind::Train);
  std::unique_ptr<TypeModel> ShModel = makeModel(MC, Train, U2);
  double ShLoss = trainModel(*ShModel, Train, TO);
  Predictor ShP = Predictor::knn(*ShModel, SD->trainValid(), KO);
  std::vector<PredictionResult> ShPreds =
      ShP.predictAll(SD->split(SplitKind::Test));

  EXPECT_EQ(RefLoss, ShLoss) << "training digests diverged";

  // τmap byte equality: same marker count, same embedding bit patterns
  // in the same order, same type spellings.
  const TypeMap &RefMap = RefP.typeMap();
  const TypeMap &ShMap = ShP.typeMap();
  ASSERT_EQ(RefMap.size(), ShMap.size());
  ASSERT_EQ(RefMap.dim(), ShMap.dim());
  EXPECT_EQ(RefMap.droppedDuplicates(), ShMap.droppedDuplicates());
  for (size_t I = 0; I != RefMap.size(); ++I) {
    EXPECT_EQ(std::memcmp(RefMap.embedding(I), ShMap.embedding(I),
                          static_cast<size_t>(RefMap.dim()) * sizeof(float)),
              0)
        << "marker " << I;
    EXPECT_EQ(RefMap.type(I)->str(), ShMap.type(I)->str());
  }

  expectPredictionsBitIdentical(RefPreds, ShPreds);
  removeShardDir(Dir);
}

INSTANTIATE_TEST_SUITE_P(Threads, ShardBitIdentityTest, ::testing::Values(1, 4),
                         [](const auto &Info) {
                           return "NumThreads" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Shard-aware shuffle
//===----------------------------------------------------------------------===//

TEST(ShardShuffleTest, ShardAwareOrderIsDeterministicAndShardContiguous) {
  std::string Dir = writeTinyShards("shuffle", 3);
  TypeUniverse U;
  std::string Err;
  std::unique_ptr<ShardedDataset> SD = ShardedDataset::open(Dir, U, &Err);
  ASSERT_NE(SD, nullptr) << Err;
  ExampleSource &Train = SD->split(SplitKind::Train);

  std::vector<int> A(Train.size()), B(Train.size());
  for (size_t I = 0; I != A.size(); ++I)
    A[I] = B[I] = static_cast<int>(I);
  Rng R1(77), R2(77), R3(78);
  Train.shuffleEpochOrder(A, R1, /*ShardAware=*/true);
  Train.shuffleEpochOrder(B, R2, /*ShardAware=*/true);
  EXPECT_EQ(A, B) << "same seed must give the same shard-aware order";

  // It is a permutation...
  std::vector<int> Sorted = A;
  std::sort(Sorted.begin(), Sorted.end());
  for (size_t I = 0; I != Sorted.size(); ++I)
    EXPECT_EQ(Sorted[I], static_cast<int>(I));

  // ...whose shard runs are contiguous: canonical index / 3 is the shard
  // id (3 files per shard; the final shard may be short), so the order
  // must hold exactly one run per shard — a shard split across two runs
  // would add a transition.
  size_t Runs = 1;
  for (size_t I = 1; I < A.size(); ++I)
    if (A[I] / 3 != A[I - 1] / 3)
      ++Runs;
  EXPECT_EQ(Runs, (A.size() + 2) / 3) << "each shard must stream contiguously";

  std::vector<int> C(Train.size());
  for (size_t I = 0; I != C.size(); ++I)
    C[I] = static_cast<int>(I);
  Train.shuffleEpochOrder(C, R3, /*ShardAware=*/true);
  EXPECT_NE(A, C) << "different seeds should reorder differently";

  // Shard-aware training is itself bit-reproducible run to run.
  ModelConfig MC = tinyConfig();
  TrainOptions TO;
  TO.Epochs = 1;
  TO.BatchFiles = 4;
  TO.ShardAwareShuffle = true;
  std::unique_ptr<TypeModel> M1 = makeModel(MC, Train, U);
  double L1 = trainModel(*M1, Train, TO);
  std::unique_ptr<TypeModel> M2 = makeModel(MC, Train, U);
  double L2 = trainModel(*M2, Train, TO);
  EXPECT_EQ(L1, L2);

  removeShardDir(Dir);
}

//===----------------------------------------------------------------------===//
// Damaged shard sets are rejected (mirrors DamagedArtifactTest)
//===----------------------------------------------------------------------===//

class DamagedShardTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = writeTinyShards("damaged", 4);
    ManifestPath = Dir + "/" + kShardManifestName;
    ShardPath = Dir + "/shard-00000.typs";
    CleanManifest = readFileBytes(ManifestPath);
    CleanShard = readFileBytes(ShardPath);
    ASSERT_FALSE(CleanManifest.empty());
    ASSERT_FALSE(CleanShard.empty());
  }
  void TearDown() override {
    writeFileBytes(ManifestPath, CleanManifest);
    writeFileBytes(ShardPath, CleanShard);
    removeShardDir(Dir);
  }

  std::string Dir, ManifestPath, ShardPath, CleanManifest, CleanShard;
  TypeUniverse U;
};

TEST_F(DamagedShardTest, CleanSetOpensAndReads) {
  std::string Err;
  EXPECT_NE(ShardedDataset::open(Dir, U, &Err), nullptr) << Err;
  std::vector<FileExample> Out;
  SplitKind S;
  EXPECT_TRUE(readShardFile(ShardPath, U, Out, &S, &Err)) << Err;
  EXPECT_FALSE(Out.empty());
}

TEST_F(DamagedShardTest, TruncationsNeverLoad) {
  for (size_t Keep : {size_t(5), CleanManifest.size() / 2,
                      CleanManifest.size() - 1}) {
    writeFileBytes(ManifestPath, CleanManifest.substr(0, Keep));
    std::string Err;
    EXPECT_EQ(ShardedDataset::open(Dir, U, &Err), nullptr)
        << "manifest survived truncation to " << Keep;
    EXPECT_FALSE(Err.empty());
  }
  writeFileBytes(ManifestPath, CleanManifest);
  for (size_t Keep :
       {size_t(5), CleanShard.size() / 2, CleanShard.size() - 1}) {
    writeFileBytes(ShardPath, CleanShard.substr(0, Keep));
    std::vector<FileExample> Out;
    std::string Err;
    EXPECT_FALSE(readShardFile(ShardPath, U, Out, nullptr, &Err))
        << "shard survived truncation to " << Keep;
    EXPECT_FALSE(Err.empty());
  }
}

TEST_F(DamagedShardTest, CorruptPayloadNeverReads) {
  for (size_t Pos : {CleanShard.size() / 3, CleanShard.size() / 2,
                     CleanShard.size() - 8}) {
    std::string Bad = CleanShard;
    Bad[Pos] = static_cast<char>(Bad[Pos] ^ 0x11);
    writeFileBytes(ShardPath, Bad);
    std::vector<FileExample> Out;
    std::string Err;
    EXPECT_FALSE(readShardFile(ShardPath, U, Out, nullptr, &Err))
        << "shard survived corruption at byte " << Pos;
    EXPECT_FALSE(Err.empty());
  }
}

TEST_F(DamagedShardTest, FutureFormatVersionIsRejected) {
  {
    ArchiveWriter W(kShardFormatVersion + 7, kShardMagic);
    W.beginChunk("mset");
    W.writeI32(10);
    W.endChunk();
    std::string Err;
    ASSERT_TRUE(W.writeFile(ManifestPath, &Err)) << Err;
    EXPECT_EQ(ShardedDataset::open(Dir, U, &Err), nullptr);
    EXPECT_NE(Err.find("version"), std::string::npos) << Err;
  }
  {
    ArchiveWriter W(kShardFormatVersion + 7, kShardMagic);
    W.beginChunk("smet");
    W.writeU8(0);
    W.endChunk();
    std::string Err;
    ASSERT_TRUE(W.writeFile(ShardPath, &Err)) << Err;
    std::vector<FileExample> Out;
    EXPECT_FALSE(readShardFile(ShardPath, U, Out, nullptr, &Err));
    EXPECT_NE(Err.find("version"), std::string::npos) << Err;
  }
}

TEST_F(DamagedShardTest, WrongMagicIsRejected) {
  // A model artifact ("TYPA") is not a shard set, even with valid
  // framing and checksums.
  ArchiveWriter W(kShardFormatVersion);
  W.beginChunk("mset");
  W.writeI32(10);
  W.endChunk();
  std::string Err;
  ASSERT_TRUE(W.writeFile(ManifestPath, &Err)) << Err;
  EXPECT_EQ(ShardedDataset::open(Dir, U, &Err), nullptr);
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
}

TEST_F(DamagedShardTest, ShardTableInconsistencyIsRejected) {
  // Rewrite the manifest with per-split totals that disagree with the
  // shard table; open() must refuse rather than mis-stream.
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(CleanManifest, &Err, kShardMagic)) << Err;
  ArchiveCursor MC = R.chunk("mset", &Err);
  int32_t Threshold = MC.readI32();
  uint64_t NumShards = MC.readU64();
  ArchiveWriter W(kShardFormatVersion, kShardMagic);
  W.beginChunk("mset");
  W.writeI32(Threshold);
  W.writeU64(NumShards);
  for (int I = 0; I != kNumSplits; ++I)
    W.writeU64(99999); // bogus file totals
  for (int I = 0; I != kNumSplits; ++I)
    W.writeU64(99999);
  W.endChunk();
  // Copy the genuine shrd/tcnt chunks over.
  for (const char *Tag : {"shrd", "tcnt"}) {
    ArchiveCursor C = R.chunk(Tag, &Err);
    W.beginChunk(Tag);
    for (size_t I = 0, N = C.remaining(); I != N; ++I)
      W.writeU8(C.readU8());
    W.endChunk();
  }
  ASSERT_TRUE(W.writeFile(ManifestPath, &Err)) << Err;
  EXPECT_EQ(ShardedDataset::open(Dir, U, &Err), nullptr);
  EXPECT_NE(Err.find("totals"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Parallel shard building is byte-identical to serial
//===----------------------------------------------------------------------===//

class ParallelBuildTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelBuildTest, ParallelBuildIsByteIdenticalToSerial) {
  // The determinism contract at its strictest: same corpus, same shard
  // size, 1 vs 4 builder threads — every byte on disk must match, from
  // one-file shards (every chunk a shard) to one giant shard (the wave
  // machinery degenerating to serial).
  int FilesPerShard = GetParam();
  std::string Tag = std::to_string(FilesPerShard);
  ShardBuildStats SerStats, ParStats;
  std::string SerDir = writeTinyShards("pbser" + Tag, FilesPerShard,
                                       /*NumThreads=*/1, &SerStats);
  std::string ParDir = writeTinyShards("pbpar" + Tag, FilesPerShard,
                                       /*NumThreads=*/4, &ParStats);

  EXPECT_EQ(SerStats.FilesIn, ParStats.FilesIn);
  EXPECT_EQ(SerStats.DedupDropped, ParStats.DedupDropped);
  EXPECT_EQ(SerStats.FilesSharded, ParStats.FilesSharded);
  ASSERT_EQ(SerStats.ShardsWritten, ParStats.ShardsWritten);
  ASSERT_GT(SerStats.ShardsWritten, 0u);

  EXPECT_EQ(readFileBytes(SerDir + "/" + kShardManifestName),
            readFileBytes(ParDir + "/" + kShardManifestName))
      << "manifest diverged at " << FilesPerShard << " files/shard";
  for (size_t I = 0; I != SerStats.ShardsWritten; ++I) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "shard-%05zu.typs", I);
    std::string Ser = readFileBytes(SerDir + "/" + Name);
    ASSERT_FALSE(Ser.empty()) << Name;
    EXPECT_EQ(Ser, readFileBytes(ParDir + "/" + Name)) << Name << " diverged";
  }

  // And the parallel-built set round-trips like any other.
  TypeUniverse U;
  std::string Err;
  std::unique_ptr<ShardedDataset> SD = ShardedDataset::open(ParDir, U, &Err);
  ASSERT_NE(SD, nullptr) << Err;
  EXPECT_EQ(SD->numFiles(SplitKind::Train) + SD->numFiles(SplitKind::Valid) +
                SD->numFiles(SplitKind::Test),
            ParStats.FilesSharded);

  removeShardDir(SerDir);
  removeShardDir(ParDir);
}

INSTANTIATE_TEST_SUITE_P(ShardSizes, ParallelBuildTest,
                         ::testing::Values(1, 3, 64),
                         [](const auto &Info) {
                           return "FilesPerShard" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Prefetch: the background decoder must be invisible in the bits
//===----------------------------------------------------------------------===//

TEST(ShardPrefetchTest, TrainingTauMapAndPredictionsMatchPrefetchOff) {
  std::string Dir = writeTinyShards("pfbits", 3);
  ModelConfig MC = tinyConfig();
  TrainOptions TO;
  TO.Epochs = 2;
  TO.BatchFiles = 4;
  KnnOptions KO;

  // Reference: prefetch disabled, every shard decoded on demand.
  TypeUniverse UOff;
  std::string Err;
  ShardedDatasetOptions Off;
  Off.MaxResidentShards = 2;
  Off.Prefetch = false;
  std::unique_ptr<ShardedDataset> SDOff =
      ShardedDataset::open(Dir, UOff, Off, &Err);
  ASSERT_NE(SDOff, nullptr) << Err;
  EXPECT_FALSE(SDOff->prefetchEnabled());
  ExampleSource &TrOff = SDOff->split(SplitKind::Train);
  std::unique_ptr<TypeModel> MOff = makeModel(MC, TrOff, UOff);
  double LossOff = trainModel(*MOff, TrOff, TO);
  Predictor POff = Predictor::knn(*MOff, SDOff->trainValid(), KO);
  std::vector<PredictionResult> PredsOff =
      POff.predictAll(SDOff->split(SplitKind::Test));

  // Prefetch on: same everything, shards decoded a step ahead.
  TypeUniverse UOn;
  ShardedDatasetOptions On;
  On.MaxResidentShards = 2;
  On.Prefetch = true;
  std::unique_ptr<ShardedDataset> SDOn =
      ShardedDataset::open(Dir, UOn, On, &Err);
  ASSERT_NE(SDOn, nullptr) << Err;
  EXPECT_TRUE(SDOn->prefetchEnabled());
  ExampleSource &TrOn = SDOn->split(SplitKind::Train);
  std::unique_ptr<TypeModel> MOn = makeModel(MC, TrOn, UOn);
  double LossOn = trainModel(*MOn, TrOn, TO);
  Predictor POn = Predictor::knn(*MOn, SDOn->trainValid(), KO);
  std::vector<PredictionResult> PredsOn =
      POn.predictAll(SDOn->split(SplitKind::Test));

  EXPECT_EQ(LossOff, LossOn) << "prefetch changed the training digest";
  EXPECT_EQ(SDOff->decodeCount(), SDOn->decodeCount())
      << "prefetch must neither add nor skip decodes";
  EXPECT_GT(SDOn->prefetchHits(), 0u) << "prefetcher never served a shard";
  EXPECT_EQ(SDOff->prefetchHits(), 0u);

  // τmap byte equality, then prediction bit-identity.
  const TypeMap &MapOff = POff.typeMap();
  const TypeMap &MapOn = POn.typeMap();
  ASSERT_EQ(MapOff.size(), MapOn.size());
  ASSERT_EQ(MapOff.dim(), MapOn.dim());
  EXPECT_EQ(MapOff.droppedDuplicates(), MapOn.droppedDuplicates());
  for (size_t I = 0; I != MapOff.size(); ++I) {
    EXPECT_EQ(std::memcmp(MapOff.embedding(I), MapOn.embedding(I),
                          static_cast<size_t>(MapOff.dim()) * sizeof(float)),
              0)
        << "marker " << I;
    EXPECT_EQ(MapOff.type(I)->str(), MapOn.type(I)->str());
  }
  expectPredictionsBitIdentical(PredsOff, PredsOn);

  removeShardDir(Dir);
}

TEST(ShardPrefetchTest, ShardAwareShuffleTrainingMatchesPrefetchOff) {
  // The shard-aware order is the prefetcher's best case (each shard
  // streams exactly once per epoch); the digest must still not move.
  std::string Dir = writeTinyShards("pfaware", 3);
  ModelConfig MC = tinyConfig();
  TrainOptions TO;
  TO.Epochs = 2;
  TO.BatchFiles = 4;
  TO.ShardAwareShuffle = true;

  TypeUniverse UOff;
  std::string Err;
  ShardedDatasetOptions Off;
  Off.MaxResidentShards = 2;
  Off.Prefetch = false;
  std::unique_ptr<ShardedDataset> SDOff =
      ShardedDataset::open(Dir, UOff, Off, &Err);
  ASSERT_NE(SDOff, nullptr) << Err;
  ExampleSource &TrOff = SDOff->split(SplitKind::Train);
  std::unique_ptr<TypeModel> MOff = makeModel(MC, TrOff, UOff);
  double LossOff = trainModel(*MOff, TrOff, TO);

  TypeUniverse UOn;
  ShardedDatasetOptions On;
  On.MaxResidentShards = 2;
  On.Prefetch = true;
  std::unique_ptr<ShardedDataset> SDOn =
      ShardedDataset::open(Dir, UOn, On, &Err);
  ASSERT_NE(SDOn, nullptr) << Err;
  ExampleSource &TrOn = SDOn->split(SplitKind::Train);
  std::unique_ptr<TypeModel> MOn = makeModel(MC, TrOn, UOn);
  double LossOn = trainModel(*MOn, TrOn, TO);

  EXPECT_EQ(LossOff, LossOn) << "shard-aware prefetch changed the digest";
  EXPECT_EQ(SDOff->decodeCount(), SDOn->decodeCount());
  EXPECT_GT(SDOn->prefetchHits(), 0u);

  removeShardDir(Dir);
}

TEST(ShardPrefetchTest, MidEpochResumeWithPrefetchMatchesUninterrupted) {
  // Interrupt inside an epoch with prefetch on, resume in a "new
  // process" (fresh open, fresh universe, prefetch on), and require the
  // finished run to be bit-identical to an uninterrupted prefetch-off
  // run — the resume cursor feeds planPrefetch, so the prefetcher starts
  // mid-plan.
  std::string Dir = writeTinyShards("pfresume", 2);
  ModelConfig MC = tinyConfig();
  TrainOptions TO;
  TO.Epochs = 2;
  TO.BatchFiles = 2; // several steps per epoch, so step 3 is mid-epoch

  TypeUniverse URef;
  std::string Err;
  ShardedDatasetOptions Off;
  Off.MaxResidentShards = 2;
  Off.Prefetch = false;
  std::unique_ptr<ShardedDataset> SDRef =
      ShardedDataset::open(Dir, URef, Off, &Err);
  ASSERT_NE(SDRef, nullptr) << Err;
  ExampleSource &TrRef = SDRef->split(SplitKind::Train);
  std::unique_ptr<TypeModel> Ref = makeModel(MC, TrRef, URef);
  double RefLoss = trainModel(*Ref, TrRef, TO);

  std::string Path = testing::TempDir() + "typilus_pf_ckpt_" +
                     std::to_string(static_cast<long>(getpid()));
  ShardedDatasetOptions On;
  On.MaxResidentShards = 2;
  On.Prefetch = true;

  TypeUniverse UCut;
  std::unique_ptr<ShardedDataset> SDCut =
      ShardedDataset::open(Dir, UCut, On, &Err);
  ASSERT_NE(SDCut, nullptr) << Err;
  ExampleSource &TrCut = SDCut->split(SplitKind::Train);
  std::unique_ptr<TypeModel> Cut = makeModel(MC, TrCut, UCut);
  TrainOptions CutTO = TO;
  CutTO.CheckpointPath = Path;
  CutTO.CheckpointEverySteps = 2;
  CutTO.StopAfterSteps = 3; // stops (and checkpoints) inside epoch 1
  Trainer CutT(*Cut, CutTO);
  CutT.run(TrCut);
  EXPECT_EQ(CutT.epochsDone(), 0) << "the stop must land mid-epoch";

  TypeUniverse URes;
  std::unique_ptr<ShardedDataset> SDRes =
      ShardedDataset::open(Dir, URes, On, &Err);
  ASSERT_NE(SDRes, nullptr) << Err;
  ExampleSource &TrRes = SDRes->split(SplitKind::Train);
  std::unique_ptr<TypeModel> Resumed = makeModel(MC, TrRes, URes);
  Trainer ResumedT(*Resumed, TO);
  ASSERT_TRUE(ResumedT.resumeFrom(Path, &Err)) << Err;
  double ResLoss = ResumedT.run(TrRes);
  EXPECT_EQ(ResumedT.epochsDone(), 2);

  EXPECT_EQ(RefLoss, ResLoss) << "prefetched mid-epoch resume diverged";
  const auto &RP = Ref->params().params();
  const auto &SP = Resumed->params().params();
  ASSERT_EQ(RP.size(), SP.size());
  for (size_t I = 0; I != RP.size(); ++I)
    for (int64_t J = 0; J != RP[I].val().numel(); ++J)
      ASSERT_EQ(RP[I].val()[J], SP[I].val()[J])
          << "param " << I << " element " << J;

  std::remove(Path.c_str());
  removeShardDir(Dir);
}

TEST(ShardPrefetchTest, PinsSurviveEvictionWhilePrefetcherRaces) {
  // The PinsSurviveEviction guarantee under the harshest prefetch
  // conditions: one-shard residency, and a zig-zag access pattern whose
  // direction reversals keep invalidating the prefetcher's aim, so
  // claims race against stale ready slots. ASan/TSan make this a
  // lifetime + data-race probe.
  std::string Dir = writeTinyShards("pfpins", 2);
  TypeUniverse U;
  std::string Err;
  ShardedDatasetOptions SO;
  SO.MaxResidentShards = 1;
  SO.Prefetch = true;
  std::unique_ptr<ShardedDataset> SD = ShardedDataset::open(Dir, U, SO, &Err);
  ASSERT_NE(SD, nullptr) << Err;

  ExampleSource &Train = SD->split(SplitKind::Train);
  ASSERT_GT(Train.size(), 4u);

  ExamplePin Pin;
  const FileExample &First = Train.get(0, Pin);
  std::string Path = First.Path;
  size_t Nodes = First.Graph.numNodes();
  ExamplePin Walk;
  for (int Pass = 0; Pass != 3; ++Pass) {
    for (size_t I = 0; I != Train.size(); ++I)
      (void)Train.get(I, Walk);
    for (size_t I = Train.size(); I != 0; --I)
      (void)Train.get(I - 1, Walk);
  }
  EXPECT_LE(SD->residentShards(), 1u);
  EXPECT_GT(SD->decodeCount(), SD->residentShards());
  EXPECT_EQ(First.Path, Path);
  EXPECT_EQ(First.Graph.numNodes(), Nodes);

  removeShardDir(Dir);
}

//===----------------------------------------------------------------------===//
// Real-tree ingestion (`typilus shard --from-dir`)
//===----------------------------------------------------------------------===//

TEST(IngestTest, WalkSkipsAndReportsRejectsNeverFatally) {
  std::string Root = std::string(TYPILUS_TEST_DATA_DIR) + "/pytree";
  std::vector<CorpusFile> Files;
  IngestReport Report;
  std::string Err;
  ASSERT_TRUE(collectPyTree(Root, Files, Report, &Err)) << Err;

  // The fixture tree: 8 .py files, 6 inside the supported subset, a
  // try/except file and a decorator file that must skip-and-report.
  EXPECT_EQ(Report.FilesSeen, 8u);
  EXPECT_EQ(Report.FilesAccepted, 6u);
  EXPECT_EQ(Report.FilesUnreadable, 0u);
  ASSERT_EQ(Report.Rejects.size(), 2u);
  ASSERT_EQ(Files.size(), 6u);

  // Name-order walk => fixed reject order, each reason carrying
  // "path:line: message" context pointing at the offending construct.
  EXPECT_EQ(Report.Rejects[0].Path, "scripts/legacy.py");
  EXPECT_EQ(Report.Rejects[0].Reason.rfind("scripts/legacy.py:", 0), 0u)
      << Report.Rejects[0].Reason;
  EXPECT_EQ(Report.Rejects[1].Path, "vendored.py");
  EXPECT_EQ(Report.Rejects[1].Reason.rfind("vendored.py:", 0), 0u)
      << Report.Rejects[1].Reason;
  for (const IngestReject &R : Report.Rejects)
    EXPECT_NE(R.Reason.find(": "), std::string::npos) << R.Reason;

  // Determinism: a second walk yields the identical corpus.
  std::vector<CorpusFile> Again;
  IngestReport Report2;
  ASSERT_TRUE(collectPyTree(Root, Again, Report2, &Err)) << Err;
  ASSERT_EQ(Again.size(), Files.size());
  for (size_t I = 0; I != Files.size(); ++I) {
    EXPECT_EQ(Files[I].Path, Again[I].Path);
    EXPECT_EQ(Files[I].Source, Again[I].Source);
  }
}

TEST(IngestTest, MissingRootFailsWithDiagnostic) {
  std::vector<CorpusFile> Files;
  IngestReport Report;
  std::string Err;
  EXPECT_FALSE(
      collectPyTree("/nonexistent/typilus-pytree", Files, Report, &Err));
  EXPECT_NE(Err.find("not a directory"), std::string::npos) << Err;
}

TEST(IngestTest, FromDirRoundTripsThroughShardsAndStreaming) {
  std::string Root = std::string(TYPILUS_TEST_DATA_DIR) + "/pytree";
  std::vector<CorpusFile> Files;
  IngestReport Report;
  std::string Err;
  ASSERT_TRUE(collectPyTree(Root, Files, Report, &Err)) << Err;

  std::string Dir = testing::TempDir() + "typilus_shards_fromdir_" +
                    std::to_string(static_cast<long>(getpid()));
  TypeUniverse U;
  ShardBuildOptions SO;
  SO.Dir = Dir;
  SO.FilesPerShard = 3;
  DatasetConfig DC;
  DC.CommonThreshold = 2;
  ShardBuildStats Stats;
  std::vector<UdtSpec> NoUdts; // real trees declare classes in source
  ASSERT_TRUE(buildShards(Files, NoUdts, U, nullptr, DC, SO, &Err, &Stats))
      << Err;
  EXPECT_EQ(Stats.FilesIn, 6u);
  EXPECT_EQ(Stats.DedupDropped, 1u) << "util_mirror.py must dedup away";
  EXPECT_EQ(Stats.FilesSharded, 5u);
  ASSERT_GT(Stats.ShardsWritten, 0u);

  // The written set streams back: all files reachable, real annotation
  // targets decoded.
  TypeUniverse U2;
  std::unique_ptr<ShardedDataset> SD = ShardedDataset::open(Dir, U2, &Err);
  ASSERT_NE(SD, nullptr) << Err;
  EXPECT_EQ(SD->numFiles(SplitKind::Train) + SD->numFiles(SplitKind::Valid) +
                SD->numFiles(SplitKind::Test),
            Stats.FilesSharded);
  size_t Targets = 0;
  for (SplitKind S : {SplitKind::Train, SplitKind::Valid, SplitKind::Test})
    for (const FileExample &Ex : drain(SD->split(S)))
      Targets += Ex.Targets.size();
  EXPECT_GT(Targets, 0u) << "real files must contribute annotation targets";

  removeShardDir(Dir);
}
