//===- tests/PyfrontTest.cpp - pyfront/ unit tests ---------------------------===//

#include "pyfront/Dataflow.h"
#include "pyfront/Lexer.h"
#include "pyfront/Parser.h"
#include "pyfront/SymbolTable.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace typilus;

namespace {

/// Lexes and returns the token kinds, dropping Eof.
std::vector<TokKind> kindsOf(const std::string &Src) {
  std::vector<Diagnostic> Diags;
  std::vector<Token> Toks = lexSource(Src, Diags);
  std::vector<TokKind> Kinds;
  for (const Token &T : Toks)
    if (T.Kind != TokKind::Eof)
      Kinds.push_back(T.Kind);
  return Kinds;
}

/// Finds the unique symbol with \p Name; fails the test when absent.
Symbol *findSym(SymbolTable &ST, const std::string &Name,
                SymbolKind Kind) {
  for (const auto &S : ST.symbols())
    if (S->Name == Name && S->Kind == Kind)
      return S.get();
  return nullptr;
}

struct Analyzed {
  ParsedFile PF;
  SymbolTable ST;
};

Analyzed analyze(const std::string &Src) {
  Analyzed A;
  A.PF = parseFile("test.py", Src);
  buildSymbolTable(A.PF, A.ST);
  return A;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, LexesSimpleAssignment) {
  auto Kinds = kindsOf("x = 1\n");
  EXPECT_EQ(Kinds, (std::vector<TokKind>{TokKind::Identifier, TokKind::Assign,
                                         TokKind::IntLit, TokKind::Newline}));
}

TEST(LexerTest, EmitsIndentDedent) {
  auto Kinds = kindsOf("if x:\n    y = 1\nz = 2\n");
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::Indent),
            Kinds.end());
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::Dedent),
            Kinds.end());
}

TEST(LexerTest, ClosesDanglingIndentsAtEof) {
  auto Kinds = kindsOf("if x:\n    if y:\n        z = 1");
  int Indents = std::count(Kinds.begin(), Kinds.end(), TokKind::Indent);
  int Dedents = std::count(Kinds.begin(), Kinds.end(), TokKind::Dedent);
  EXPECT_EQ(Indents, 2);
  EXPECT_EQ(Dedents, 2);
}

TEST(LexerTest, SkipsCommentsAndBlankLines) {
  auto Kinds = kindsOf("# a comment\n\n   \nx = 1  # trailing\n");
  EXPECT_EQ(Kinds, (std::vector<TokKind>{TokKind::Identifier, TokKind::Assign,
                                         TokKind::IntLit, TokKind::Newline}));
}

TEST(LexerTest, ImplicitLineJoiningInsideBrackets) {
  auto Kinds = kindsOf("x = f(1,\n      2)\n");
  // No Newline token between the arguments.
  int Newlines = std::count(Kinds.begin(), Kinds.end(), TokKind::Newline);
  EXPECT_EQ(Newlines, 1);
}

TEST(LexerTest, DistinguishesFloatAndInt) {
  auto Kinds = kindsOf("a = 1.5\nb = 2\nc = 1e3\n");
  EXPECT_EQ(std::count(Kinds.begin(), Kinds.end(), TokKind::FloatLit), 2);
  EXPECT_EQ(std::count(Kinds.begin(), Kinds.end(), TokKind::IntLit), 1);
}

TEST(LexerTest, LexesStringsAndBytes) {
  std::vector<Diagnostic> Diags;
  auto Toks = lexSource("s = 'ab'\nb = b\"cd\"\n", Diags);
  EXPECT_TRUE(Diags.empty());
  EXPECT_EQ(Toks[2].Kind, TokKind::StringLit);
  EXPECT_EQ(Toks[2].Text, "'ab'");
  EXPECT_EQ(Toks[6].Kind, TokKind::BytesLit);
}

TEST(LexerTest, LexesOperatorsGreedily) {
  auto Kinds = kindsOf("a == b != c <= d >= e // f ** g -> h += i\n");
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::EqEq), Kinds.end());
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::NotEq), Kinds.end());
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::DoubleSlash),
            Kinds.end());
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::DoubleStar),
            Kinds.end());
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::Arrow), Kinds.end());
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::PlusAssign),
            Kinds.end());
}

TEST(LexerTest, ReportsUnterminatedString) {
  std::vector<Diagnostic> Diags;
  lexSource("s = 'oops\n", Diags);
  EXPECT_FALSE(Diags.empty());
}

TEST(LexerTest, KeywordsAreNotIdentifiers) {
  auto Kinds = kindsOf("def f():\n    return None\n");
  EXPECT_EQ(Kinds[0], TokKind::KwDef);
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::KwReturn),
            Kinds.end());
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), TokKind::KwNone),
            Kinds.end());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, ParsesFunctionWithAnnotations) {
  auto PF = parseFile("t.py", "def add(a: int, b: int = 0) -> int:\n"
                              "    return a + b\n");
  ASSERT_TRUE(PF.Diags.empty());
  ASSERT_EQ(PF.Mod->Body.size(), 1u);
  auto *F = dyn_cast<FunctionDef>(PF.Mod->Body[0]);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Name, "add");
  ASSERT_EQ(F->Params.size(), 2u);
  EXPECT_EQ(F->Params[0]->AnnotationText, "int");
  EXPECT_NE(F->Params[1]->Default, nullptr);
  EXPECT_EQ(F->ReturnsText, "int");
  ASSERT_EQ(F->Body.size(), 1u);
  EXPECT_TRUE(isa<ReturnStmt>(F->Body[0]));
}

TEST(ParserTest, AnnotationTokensAreFlagged) {
  auto PF = parseFile("t.py", "def f(x: List[int]) -> Dict[str, int]:\n"
                              "    return {}\n");
  ASSERT_TRUE(PF.Diags.empty());
  int Flagged = 0;
  for (const Token &T : PF.Tokens)
    if (T.InAnnotation)
      ++Flagged;
  // ':' 'List' '[' 'int' ']'  +  '->' 'Dict' '[' 'str' ',' 'int' ']'
  EXPECT_GE(Flagged, 10);
  // The parameter name itself is NOT flagged.
  for (const Token &T : PF.Tokens)
    if (T.Text == "x") {
      EXPECT_FALSE(T.InAnnotation);
    }
}

TEST(ParserTest, ParsesAnnotatedAssignment) {
  auto PF = parseFile("t.py", "count: int = 0\nname: str\n");
  ASSERT_TRUE(PF.Diags.empty());
  ASSERT_EQ(PF.Mod->Body.size(), 2u);
  auto *A0 = cast<AssignStmt>(PF.Mod->Body[0]);
  EXPECT_EQ(A0->AnnotationText, "int");
  EXPECT_NE(A0->Value, nullptr);
  auto *A1 = cast<AssignStmt>(PF.Mod->Body[1]);
  EXPECT_EQ(A1->AnnotationText, "str");
  EXPECT_EQ(A1->Value, nullptr);
}

TEST(ParserTest, ParsesComplexAnnotationText) {
  auto PF = parseFile(
      "t.py", "def f(cb: Callable[[int, str], bool], o: Optional[torch.Tensor],"
              " t: Tuple[int, ...]) -> None:\n    pass\n");
  ASSERT_TRUE(PF.Diags.empty());
  auto *F = cast<FunctionDef>(PF.Mod->Body[0]);
  EXPECT_EQ(F->Params[0]->AnnotationText, "Callable[[int, str], bool]");
  EXPECT_EQ(F->Params[1]->AnnotationText, "Optional[torch.Tensor]");
  EXPECT_EQ(F->Params[2]->AnnotationText, "Tuple[int, ...]");
  EXPECT_EQ(F->ReturnsText, "None");
}

TEST(ParserTest, ParsesClassWithMethods) {
  auto PF = parseFile("t.py", "class Dog(Animal):\n"
                              "    def bark(self) -> str:\n"
                              "        return 'woof'\n");
  ASSERT_TRUE(PF.Diags.empty());
  auto *C = cast<ClassDef>(PF.Mod->Body[0]);
  EXPECT_EQ(C->Name, "Dog");
  ASSERT_EQ(C->Bases.size(), 1u);
  EXPECT_EQ(C->Bases[0], "Animal");
  ASSERT_EQ(C->Body.size(), 1u);
  EXPECT_TRUE(isa<FunctionDef>(C->Body[0]));
}

TEST(ParserTest, ParsesControlFlow) {
  auto PF = parseFile("t.py", "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n"
                              "    x = 3\nwhile x:\n    x -= 1\n"
                              "for i in range(10):\n    total += i\n");
  ASSERT_TRUE(PF.Diags.empty());
  ASSERT_EQ(PF.Mod->Body.size(), 3u);
  auto *I = cast<IfStmt>(PF.Mod->Body[0]);
  ASSERT_EQ(I->Else.size(), 1u);
  EXPECT_TRUE(isa<IfStmt>(I->Else[0])); // elif nests
  EXPECT_TRUE(isa<WhileStmt>(PF.Mod->Body[1]));
  EXPECT_TRUE(isa<ForStmt>(PF.Mod->Body[2]));
}

TEST(ParserTest, ParsesCallsWithKeywordArguments) {
  auto PF = parseFile("t.py", "r = foo(1, bar=2, baz=x)\n");
  ASSERT_TRUE(PF.Diags.empty());
  auto *A = cast<AssignStmt>(PF.Mod->Body[0]);
  auto *C = cast<CallExpr>(A->Value);
  EXPECT_EQ(C->Args.size(), 1u);
  ASSERT_EQ(C->KwNames.size(), 2u);
  EXPECT_EQ(C->KwNames[0], "bar");
  EXPECT_EQ(C->KwNames[1], "baz");
}

TEST(ParserTest, ParsesExpressionPrecedence) {
  auto PF = parseFile("t.py", "r = 1 + 2 * 3\n");
  ASSERT_TRUE(PF.Diags.empty());
  auto *A = cast<AssignStmt>(PF.Mod->Body[0]);
  auto *Add = cast<BinaryExpr>(A->Value);
  EXPECT_EQ(Add->Op, BinOpKind::Add);
  EXPECT_TRUE(isa<IntLit>(Add->Lhs));
  auto *Mul = cast<BinaryExpr>(Add->Rhs);
  EXPECT_EQ(Mul->Op, BinOpKind::Mult);
}

TEST(ParserTest, ParsesAttributeAndSubscriptChains) {
  auto PF = parseFile("t.py", "v = obj.items[0].name\n");
  ASSERT_TRUE(PF.Diags.empty());
  auto *A = cast<AssignStmt>(PF.Mod->Body[0]);
  auto *Outer = cast<AttributeExpr>(A->Value);
  EXPECT_EQ(Outer->Attr, "name");
  EXPECT_TRUE(isa<SubscriptExpr>(Outer->Value));
}

TEST(ParserTest, ParsesDisplays) {
  auto PF = parseFile(
      "t.py", "a = [1, 2]\nb = {'k': 1}\nc = {1, 2}\nd = (1, 2)\ne = {}\n");
  ASSERT_TRUE(PF.Diags.empty());
  EXPECT_TRUE(isa<ListExpr>(cast<AssignStmt>(PF.Mod->Body[0])->Value));
  EXPECT_TRUE(isa<DictExpr>(cast<AssignStmt>(PF.Mod->Body[1])->Value));
  EXPECT_TRUE(isa<SetExpr>(cast<AssignStmt>(PF.Mod->Body[2])->Value));
  EXPECT_TRUE(isa<TupleExpr>(cast<AssignStmt>(PF.Mod->Body[3])->Value));
  EXPECT_TRUE(isa<DictExpr>(cast<AssignStmt>(PF.Mod->Body[4])->Value));
}

TEST(ParserTest, ParsesTupleAssignment) {
  auto PF = parseFile("t.py", "a, b = 1, 2\n");
  ASSERT_TRUE(PF.Diags.empty());
  auto *A = cast<AssignStmt>(PF.Mod->Body[0]);
  auto *T = cast<TupleExpr>(A->Target);
  ASSERT_EQ(T->Elts.size(), 2u);
  EXPECT_TRUE(cast<NameExpr>(T->Elts[0])->IsStore);
}

TEST(ParserTest, ParsesImports) {
  auto PF = parseFile("t.py", "import os.path as osp\n"
                              "from typing import List, Optional as Opt\n");
  ASSERT_TRUE(PF.Diags.empty());
  auto *I0 = cast<ImportStmt>(PF.Mod->Body[0]);
  EXPECT_EQ(I0->ModuleName, "os.path");
  EXPECT_EQ(I0->ModuleAlias, "osp");
  auto *I1 = cast<ImportStmt>(PF.Mod->Body[1]);
  ASSERT_EQ(I1->Names.size(), 2u);
  EXPECT_EQ(I1->Names[1].first, "Optional");
  EXPECT_EQ(I1->Names[1].second, "Opt");
}

TEST(ParserTest, ParsesYieldAndReturn) {
  auto PF = parseFile("t.py", "def gen(n):\n    yield n\n    return\n");
  ASSERT_TRUE(PF.Diags.empty());
  auto *F = cast<FunctionDef>(PF.Mod->Body[0]);
  ASSERT_EQ(F->Body.size(), 2u);
  auto *ES = cast<ExprStmt>(F->Body[0]);
  EXPECT_TRUE(isa<YieldExpr>(ES->E));
}

TEST(ParserTest, RecoversFromErrors) {
  auto PF = parseFile("t.py", "def f(:\n    pass\nx = 1\n");
  EXPECT_FALSE(PF.Diags.empty());
  // The parser still produced a module and found the trailing assignment.
  bool FoundAssign = false;
  for (Stmt *S : PF.Mod->Body)
    FoundAssign |= isa<AssignStmt>(S);
  EXPECT_TRUE(FoundAssign);
}

TEST(ParserTest, TokenRangesCoverNodes) {
  auto PF = parseFile("t.py", "total = price * count\n");
  ASSERT_TRUE(PF.Diags.empty());
  auto *A = cast<AssignStmt>(PF.Mod->Body[0]);
  EXPECT_LE(A->FirstTok, A->Value->FirstTok);
  EXPECT_GE(A->LastTok, A->Value->LastTok);
}

//===----------------------------------------------------------------------===//
// Symbol table
//===----------------------------------------------------------------------===//

TEST(SymbolTableTest, BindsParamsReturnsAndLocals) {
  auto A = analyze("def scale(v: float, k: float) -> float:\n"
                   "    result = v * k\n"
                   "    return result\n");
  ASSERT_TRUE(A.PF.Diags.empty());
  Symbol *V = findSym(A.ST, "v", SymbolKind::Parameter);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AnnotationText, "float");
  EXPECT_EQ(V->OccTokens.size(), 2u); // declaration + one use
  Symbol *Ret = findSym(A.ST, "scale", SymbolKind::Return);
  ASSERT_NE(Ret, nullptr);
  EXPECT_EQ(Ret->AnnotationText, "float");
  Symbol *Res = findSym(A.ST, "result", SymbolKind::Variable);
  ASSERT_NE(Res, nullptr);
  EXPECT_EQ(Res->OccTokens.size(), 2u);
}

TEST(SymbolTableTest, DistinguishesScopes) {
  auto A = analyze("x = 1\n"
                   "def f():\n"
                   "    x = 2\n"
                   "    return x\n");
  ASSERT_TRUE(A.PF.Diags.empty());
  int XCount = 0;
  for (const auto &S : A.ST.symbols())
    if (S->Name == "x" && S->Kind == SymbolKind::Variable)
      ++XCount;
  EXPECT_EQ(XCount, 2); // module-level x and function-local x
}

TEST(SymbolTableTest, GlobalDeclarationSharesModuleSymbol) {
  auto A = analyze("count = 0\n"
                   "def bump():\n"
                   "    global count\n"
                   "    count = count + 1\n");
  ASSERT_TRUE(A.PF.Diags.empty());
  int Count = 0;
  Symbol *Sym = nullptr;
  for (const auto &S : A.ST.symbols())
    if (S->Name == "count" && S->Kind == SymbolKind::Variable) {
      ++Count;
      Sym = S.get();
    }
  EXPECT_EQ(Count, 1);
  ASSERT_NE(Sym, nullptr);
  EXPECT_EQ(Sym->OccTokens.size(), 3u);
}

TEST(SymbolTableTest, UnknownNamesBecomeExternal) {
  auto A = analyze("xs = range(10)\n");
  Symbol *R = findSym(A.ST, "range", SymbolKind::External);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->OccTokens.size(), 1u);
}

TEST(SymbolTableTest, SelfAttributesBecomeAttributeSymbols) {
  auto A = analyze("class Point:\n"
                   "    def __init__(self, x: int):\n"
                   "        self.x = x\n"
                   "    def get(self):\n"
                   "        return self.x\n");
  ASSERT_TRUE(A.PF.Diags.empty());
  Symbol *Attr = findSym(A.ST, "x", SymbolKind::Attribute);
  ASSERT_NE(Attr, nullptr);
  // One store in __init__, one load in get — the same symbol.
  EXPECT_EQ(Attr->OccTokens.size(), 2u);
}

TEST(SymbolTableTest, MethodsSkipClassScopeWhenResolving) {
  auto A = analyze("limit = 10\n"
                   "class C:\n"
                   "    limit = 5\n"
                   "    def get(self):\n"
                   "        return limit\n");
  ASSERT_TRUE(A.PF.Diags.empty());
  // The load in `get` must bind the *module* symbol, not the class field.
  auto *C = cast<ClassDef>(A.PF.Mod->Body[1]);
  auto *F = cast<FunctionDef>(C->Body[1]);
  auto *R = cast<ReturnStmt>(F->Body[0]);
  auto *N = cast<NameExpr>(R->Value);
  ASSERT_NE(N->Sym, nullptr);
  // The module-level `limit` was bound first (token index of its store is
  // the smallest occurrence).
  EXPECT_EQ(N->Sym->OccTokens.front(), 0);
}

TEST(SymbolTableTest, FunctionSymbolsTrackCallSites) {
  auto A = analyze("def helper():\n    pass\n"
                   "helper()\nhelper()\n");
  Symbol *F = findSym(A.ST, "helper", SymbolKind::Function);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->OccTokens.size(), 3u); // def + two calls
}

TEST(SymbolTableTest, PredictionTargetKinds) {
  auto A = analyze("def f(p):\n    v = p\n    return v\n");
  EXPECT_TRUE(findSym(A.ST, "p", SymbolKind::Parameter)->isPredictionTarget());
  EXPECT_TRUE(findSym(A.ST, "v", SymbolKind::Variable)->isPredictionTarget());
  EXPECT_TRUE(findSym(A.ST, "f", SymbolKind::Return)->isPredictionTarget());
  EXPECT_FALSE(findSym(A.ST, "f", SymbolKind::Function)->isPredictionTarget());
}

//===----------------------------------------------------------------------===//
// Dataflow
//===----------------------------------------------------------------------===//

TEST(DataflowTest, NextLexicalUseChainsOccurrences) {
  auto A = analyze("x = 1\ny = x\nz = x\n");
  auto DF = computeDataflow(A.PF, A.ST);
  Symbol *X = findSym(A.ST, "x", SymbolKind::Variable);
  ASSERT_NE(X, nullptr);
  ASSERT_EQ(X->OccTokens.size(), 3u);
  // Chained: occ0 -> occ1 -> occ2 (exactly two edges for x).
  int XEdges = 0;
  for (auto [From, To] : DF.NextLexicalUse) {
    bool FromX = std::find(X->OccTokens.begin(), X->OccTokens.end(), From) !=
                 X->OccTokens.end();
    if (FromX) {
      ++XEdges;
      EXPECT_LT(From, To);
    }
  }
  EXPECT_EQ(XEdges, 2);
}

TEST(DataflowTest, MayUseForksAtBranches) {
  auto A = analyze("x = 1\n"
                   "if c:\n"
                   "    a = x\n"
                   "else:\n"
                   "    b = x\n");
  auto DF = computeDataflow(A.PF, A.ST);
  Symbol *X = findSym(A.ST, "x", SymbolKind::Variable);
  ASSERT_NE(X, nullptr);
  ASSERT_EQ(X->OccTokens.size(), 3u);
  int Def = X->OccTokens[0];
  // The definition must reach *both* branch uses.
  int FromDef = 0;
  for (auto [From, To] : DF.NextMayUse)
    if (From == Def)
      ++FromDef;
  EXPECT_EQ(FromDef, 2);
}

TEST(DataflowTest, LexicalUseIsLinearAcrossBranches) {
  auto A = analyze("x = 1\n"
                   "if c:\n"
                   "    a = x\n"
                   "else:\n"
                   "    b = x\n");
  auto DF = computeDataflow(A.PF, A.ST);
  Symbol *X = findSym(A.ST, "x", SymbolKind::Variable);
  int Def = X->OccTokens[0];
  // NEXT_LEXICAL_USE connects the def only to the textually-next use.
  int FromDef = 0;
  for (auto [From, To] : DF.NextLexicalUse)
    if (From == Def)
      ++FromDef;
  EXPECT_EQ(FromDef, 1);
}

TEST(DataflowTest, LoopsCarryUsesBack) {
  auto A = analyze("i = 0\n"
                   "while c:\n"
                   "    i = i + 1\n");
  auto DF = computeDataflow(A.PF, A.ST);
  Symbol *I = findSym(A.ST, "i", SymbolKind::Variable);
  ASSERT_NE(I, nullptr);
  ASSERT_EQ(I->OccTokens.size(), 3u);
  int Store = I->OccTokens[1]; // `i =` inside the loop
  int Load = I->OccTokens[2];  // `i + 1`
  // Wait: RHS evaluates before the store, so program order is load-then-
  // store within one iteration; the loop-back edge connects the store to
  // the load of the *next* iteration.
  bool LoopBack = false;
  for (auto [From, To] : DF.NextMayUse)
    LoopBack |= From == Load && To == Store;
  // Occurrence order in source: store token < load token; the loop-carried
  // edge goes from the earlier-token store... assert both directions seen.
  bool Forward = false;
  for (auto [From, To] : DF.NextMayUse)
    Forward |= From == Store || From == Load;
  EXPECT_TRUE(LoopBack || Forward);
  // And the loop-carried relation exists at all: some edge targets a token
  // at or before its source (a back edge), or the store is reached twice.
  size_t EdgesTouchingI = 0;
  for (auto [From, To] : DF.NextMayUse) {
    bool FromI = std::find(I->OccTokens.begin(), I->OccTokens.end(), From) !=
                 I->OccTokens.end();
    if (FromI)
      ++EdgesTouchingI;
  }
  EXPECT_GE(EdgesTouchingI, 3u);
}

TEST(DataflowTest, FunctionBodiesAreSeparateFlows) {
  auto A = analyze("x = 1\n"
                   "def f(x):\n"
                   "    return x\n"
                   "y = x\n");
  auto DF = computeDataflow(A.PF, A.ST);
  Symbol *ModX = findSym(A.ST, "x", SymbolKind::Variable);
  Symbol *ParX = findSym(A.ST, "x", SymbolKind::Parameter);
  ASSERT_NE(ModX, nullptr);
  ASSERT_NE(ParX, nullptr);
  // No may-use edge crosses from the module x into the parameter x.
  for (auto [From, To] : DF.NextMayUse) {
    bool FromMod = std::find(ModX->OccTokens.begin(), ModX->OccTokens.end(),
                             From) != ModX->OccTokens.end();
    bool ToPar = std::find(ParX->OccTokens.begin(), ParX->OccTokens.end(),
                           To) != ParX->OccTokens.end();
    EXPECT_FALSE(FromMod && ToPar);
  }
}

//===----------------------------------------------------------------------===//
// Diagnostics: rejects carry file:line context (the ingestion contract)
//===----------------------------------------------------------------------===//

TEST(DiagnosticTest, FormatDiagnosticRendersPathLineMessage) {
  Diagnostic D;
  D.Line = 12;
  D.Message = "unexpected character '@'";
  EXPECT_EQ(formatDiagnostic("pkg/mod.py", D),
            "pkg/mod.py:12: unexpected character '@'");
}

TEST(DiagnosticTest, TryExceptRejectPointsAtTheOffendingLine) {
  // Outside the supported subset; --from-dir ingestion skips such files
  // and reports them through formatDiagnostic — the diagnostic must pin
  // the construct, not just say "no".
  auto PF = parseFile("legacy.py", "x: int = 1\n"
                                   "try:\n"
                                   "    y = 2\n"
                                   "except OSError:\n"
                                   "    y = 3\n");
  ASSERT_TRUE(PF.hasErrors());
  const Diagnostic &D = PF.Diags.front();
  EXPECT_GT(D.Line, 1) << "line must point past the clean first statement";
  EXPECT_FALSE(D.Message.empty());
  std::string Rendered = formatDiagnostic("legacy.py", D);
  EXPECT_EQ(Rendered.rfind("legacy.py:", 0), 0u) << Rendered;
  EXPECT_NE(Rendered.find(": "), std::string::npos) << Rendered;
}

TEST(DiagnosticTest, DecoratorRejectPointsAtTheOffendingLine) {
  auto PF = parseFile("vendored.py", "import functools\n"
                                     "\n"
                                     "@functools.cache\n"
                                     "def f(q: str) -> int:\n"
                                     "    return len(q)\n");
  ASSERT_TRUE(PF.hasErrors());
  EXPECT_EQ(PF.Diags.front().Line, 3);
  EXPECT_EQ(formatDiagnostic("vendored.py", PF.Diags.front())
                .rfind("vendored.py:3: ", 0),
            0u);
}
