//===- tests/ArtifactTest.cpp - Model artifact round-trip tests ----------------===//
//
// The train-once / serve-many contract: an artifact saved by one process
// and loaded by another must predict bit-identically to the in-process
// predictor — for every Table 2 variant, for the Annoy and the exact kNN
// path, at any thread count. Also covers rejection of damaged artifacts
// and checkpoint/resume equivalence with uninterrupted training.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "nn/Serialize.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace typilus;

namespace {

Workbench makeTinyWorkbench() {
  CorpusConfig CC;
  CC.NumFiles = 14;
  CC.NumUdts = 8;
  DatasetConfig DC;
  DC.CommonThreshold = 2;
  return Workbench::make(CC, DC);
}

ModelConfig tinyConfig(EncoderKind E, LossKind L) {
  ModelConfig MC;
  MC.Encoder = E;
  MC.Loss = L;
  MC.HiddenDim = 8;
  MC.TimeSteps = 2;
  return MC;
}

std::unique_ptr<TypeModel> trainTiny(Workbench &WB, const ModelConfig &MC,
                                     int Epochs = 1) {
  TrainOptions TO;
  TO.Epochs = Epochs;
  TO.BatchFiles = 4;
  std::unique_ptr<TypeModel> M = makeModel(MC, WB.DS, *WB.U);
  trainModel(*M, WB.DS.Train, TO);
  return M;
}

Predictor makePredictor(Workbench &WB, TypeModel &Model,
                        const KnnOptions &KO = {}) {
  if (Model.config().Loss == LossKind::Class)
    return Predictor::classifier(Model);
  std::vector<const FileExample *> MapFiles;
  for (const FileExample &F : WB.DS.Train)
    MapFiles.push_back(&F);
  for (const FileExample &F : WB.DS.Valid)
    MapFiles.push_back(&F);
  return Predictor::knn(Model, MapFiles, KO);
}

std::string tempArtifactPath(const std::string &Name) {
  return testing::TempDir() + "typilus_" + Name + ".typilus";
}

/// Bit-identity across processes means: same result identities, same
/// candidate lists, probabilities equal to the last bit. Types live in
/// different universes on the two sides, so they compare by spelling.
void expectBitIdentical(const std::vector<PredictionResult> &InProc,
                        const std::vector<PredictionResult> &Loaded) {
  ASSERT_EQ(InProc.size(), Loaded.size());
  for (size_t I = 0; I != InProc.size(); ++I) {
    const PredictionResult &A = InProc[I];
    const PredictionResult &B = Loaded[I];
    EXPECT_EQ(A.FilePath, B.FilePath);
    EXPECT_EQ(A.TargetIdx, B.TargetIdx);
    EXPECT_EQ(A.NodeIdx, B.NodeIdx);
    EXPECT_EQ(A.SymbolName, B.SymbolName);
    EXPECT_EQ(A.Kind, B.Kind);
    ASSERT_EQ(A.Candidates.size(), B.Candidates.size()) << "row " << I;
    for (size_t C = 0; C != A.Candidates.size(); ++C) {
      EXPECT_EQ(A.Candidates[C].Type->str(), B.Candidates[C].Type->str())
          << "row " << I << " candidate " << C;
      EXPECT_EQ(A.Candidates[C].Prob, B.Candidates[C].Prob)
          << "row " << I << " candidate " << C;
    }
  }
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Save -> load -> predict round-trips, all nine Table 2 variants
//===----------------------------------------------------------------------===//

class NineVariantsTest
    : public ::testing::TestWithParam<std::pair<EncoderKind, LossKind>> {};

TEST_P(NineVariantsTest, LoadedPredictorIsBitIdentical) {
  auto [Encoder, Loss] = GetParam();
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(Encoder, Loss);
  std::unique_ptr<TypeModel> M = trainTiny(WB, MC);
  Predictor P = makePredictor(WB, *M);

  // Save BEFORE the in-process predictions: the Path encoder's sampling
  // RNG advances on every embed, and the loaded model must replay the
  // exact same stream from the snapshot point.
  std::string Path = tempArtifactPath(std::string(encoderKindName(Encoder)) +
                                      lossKindName(Loss));
  std::string Err;
  ASSERT_TRUE(P.save(Path, *WB.U, &Err)) << Err;

  auto InProc = P.predictAll(WB.DS.Test);
  ASSERT_FALSE(InProc.empty());

  std::unique_ptr<Predictor> L = Predictor::load(Path, &Err);
  ASSERT_NE(L, nullptr) << Err;
  EXPECT_EQ(L->isKnn(), Loss != LossKind::Class);
  auto Served = L->predictAll(WB.DS.Test);
  expectBitIdentical(InProc, Served);
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllNine, NineVariantsTest,
    ::testing::Values(
        std::make_pair(EncoderKind::Graph, LossKind::Class),
        std::make_pair(EncoderKind::Graph, LossKind::Space),
        std::make_pair(EncoderKind::Graph, LossKind::Typilus),
        std::make_pair(EncoderKind::Seq, LossKind::Class),
        std::make_pair(EncoderKind::Seq, LossKind::Space),
        std::make_pair(EncoderKind::Seq, LossKind::Typilus),
        std::make_pair(EncoderKind::Path, LossKind::Class),
        std::make_pair(EncoderKind::Path, LossKind::Space),
        std::make_pair(EncoderKind::Path, LossKind::Typilus)),
    [](const auto &Info) {
      return std::string(encoderKindName(Info.param.first)) +
             lossKindName(Info.param.second);
    });

//===----------------------------------------------------------------------===//
// The acceptance matrix: {Annoy, exact, HNSW} x {1 thread, 4 threads}
//===----------------------------------------------------------------------===//

TEST(ArtifactTest, ServedPredictionsMatchForAllIndexesAndThreadCounts) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  std::unique_ptr<TypeModel> M = trainTiny(WB, MC, /*Epochs=*/2);

  for (KnnIndexKind Kind :
       {KnnIndexKind::Annoy, KnnIndexKind::Exact, KnnIndexKind::Hnsw}) {
    KnnOptions KO;
    KO.Index = Kind;
    Predictor P = makePredictor(WB, *M, KO);
    std::string Path = tempArtifactPath(knnIndexName(Kind));
    std::string Err;
    ASSERT_TRUE(P.save(Path, *WB.U, &Err)) << Err;
    auto InProc = P.predictAll(WB.DS.Test);

    for (int Threads : {1, 4}) {
      setGlobalNumThreads(Threads);
      std::unique_ptr<Predictor> L = Predictor::load(Path, &Err);
      ASSERT_NE(L, nullptr) << Err;
      KnnOptions LKO = L->knnOptions();
      EXPECT_EQ(LKO.Index, Kind);
      LKO.NumThreads = Threads;
      L->setKnnOptions(LKO);
      auto Served = L->predictAll(WB.DS.Test);
      expectBitIdentical(InProc, Served);
    }
    setGlobalNumThreads(0);
    std::remove(Path.c_str());
  }
}

//===----------------------------------------------------------------------===//
// Results must outlive the dataset (no dangling Target/FileExample)
//===----------------------------------------------------------------------===//

TEST(ArtifactTest, PredictionResultsOutliveTheDataset) {
  std::vector<PredictionResult> Preds;
  auto WB = std::make_unique<Workbench>(makeTinyWorkbench());
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  std::unique_ptr<TypeModel> M = trainTiny(*WB, MC);
  std::string Path = tempArtifactPath("outlive");
  std::string Err;
  {
    Predictor P = makePredictor(*WB, *M);
    ASSERT_TRUE(P.save(Path, *WB->U, &Err)) << Err;
  }
  std::unique_ptr<Predictor> L = Predictor::load(Path, &Err);
  ASSERT_NE(L, nullptr) << Err;
  Preds = L->predictAll(WB->DS.Test);
  ASSERT_FALSE(Preds.empty());

  // Tear down the whole training world: corpus, dataset, model, universe.
  M.reset();
  WB.reset();

  // Every field of every result must still be fully usable — the loaded
  // predictor owns the universe its TypeRefs live in.
  for (const PredictionResult &P : Preds) {
    EXPECT_FALSE(P.FilePath.empty());
    EXPECT_FALSE(P.SymbolName.empty());
    ASSERT_NE(P.Truth, nullptr);
    EXPECT_FALSE(P.Truth->str().empty());
    for (const ScoredType &S : P.Candidates)
      EXPECT_FALSE(S.Type->str().empty());
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Damaged artifacts are rejected with clear errors
//===----------------------------------------------------------------------===//

class DamagedArtifactTest : public ::testing::Test {
protected:
  void SetUp() override {
    WB = std::make_unique<Workbench>(makeTinyWorkbench());
    ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
    Model = trainTiny(*WB, MC);
    Predictor P = makePredictor(*WB, *Model);
    ArchiveWriter W(kModelArtifactVersion);
    P.writeArtifact(W, *WB->U);
    Clean = W.bytes();
  }

  std::unique_ptr<Workbench> WB;
  std::unique_ptr<TypeModel> Model;
  std::string Clean;
};

TEST_F(DamagedArtifactTest, CleanBytesLoad) {
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(Clean, &Err)) << Err;
  EXPECT_NE(Predictor::load(R, &Err), nullptr) << Err;
}

TEST_F(DamagedArtifactTest, TruncationsNeverLoad) {
  // Cut at several depths: inside the header, inside early chunks, just
  // short of the end. Every cut must fail cleanly.
  for (size_t Keep : {size_t(5), Clean.size() / 4, Clean.size() / 2,
                      Clean.size() - 1}) {
    ArchiveReader R;
    std::string Err;
    EXPECT_FALSE(R.openBytes(Clean.substr(0, Keep), &Err))
        << "survived truncation to " << Keep << " bytes";
    EXPECT_FALSE(Err.empty());
  }
}

TEST_F(DamagedArtifactTest, CorruptChunkPayloadNeverLoads) {
  for (size_t Pos : {Clean.size() / 3, Clean.size() / 2, Clean.size() - 8}) {
    std::string Bad = Clean;
    Bad[Pos] = static_cast<char>(Bad[Pos] ^ 0x11);
    ArchiveReader R;
    std::string Err;
    // Either the framing itself breaks or a checksum catches it; a
    // corrupt artifact must never load as a predictor.
    if (R.openBytes(Bad, &Err)) {
      EXPECT_EQ(Predictor::load(R, &Err), nullptr)
          << "survived corruption at byte " << Pos;
    }
    EXPECT_FALSE(Err.empty());
  }
}

TEST_F(DamagedArtifactTest, FutureFormatVersionIsRejected) {
  ArchiveWriter W(kModelArtifactVersion + 7);
  Predictor P = makePredictor(*WB, *Model);
  P.writeArtifact(W, *WB->U);
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
  EXPECT_EQ(Predictor::load(R, &Err), nullptr);
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;
}

TEST_F(DamagedArtifactTest, MissingChunkIsRejected) {
  // An archive with only the type table is not a model.
  ArchiveWriter W(kModelArtifactVersion);
  W.beginChunk("tuni");
  WB->U->save(W);
  W.endChunk();
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
  EXPECT_EQ(Predictor::load(R, &Err), nullptr);
  EXPECT_NE(Err.find("missing chunk"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Checkpoint / resume
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, ResumeMatchesUninterruptedTraining) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  TrainOptions TO;
  TO.Epochs = 4;
  TO.BatchFiles = 4;

  // Reference: 4 epochs straight through.
  std::unique_ptr<TypeModel> Ref = makeModel(MC, WB.DS, *WB.U);
  double RefLoss = trainModel(*Ref, WB.DS.Train, TO);

  // Interrupted: 2 epochs, checkpoint, then a brand-new trainer + model
  // resumes the remaining 2.
  std::string Path = tempArtifactPath("ckpt");
  std::unique_ptr<TypeModel> Half = makeModel(MC, WB.DS, *WB.U);
  TrainOptions HalfTO = TO;
  HalfTO.Epochs = 2;
  Trainer HalfT(*Half, HalfTO);
  HalfT.run(WB.DS.Train);
  std::string Err;
  ASSERT_TRUE(HalfT.saveCheckpoint(Path, &Err)) << Err;
  EXPECT_EQ(HalfT.epochsDone(), 2);

  std::unique_ptr<TypeModel> Resumed = makeModel(MC, WB.DS, *WB.U);
  Trainer ResumedT(*Resumed, TO);
  ASSERT_TRUE(ResumedT.resumeFrom(Path, &Err)) << Err;
  EXPECT_EQ(ResumedT.epochsDone(), 2);
  double ResLoss = ResumedT.run(WB.DS.Train);

  EXPECT_EQ(RefLoss, ResLoss) << "resumed loss diverged";
  const auto &RP = Ref->params().params();
  const auto &SP = Resumed->params().params();
  ASSERT_EQ(RP.size(), SP.size());
  for (size_t I = 0; I != RP.size(); ++I) {
    ASSERT_EQ(RP[I].val().numel(), SP[I].val().numel());
    for (int64_t J = 0; J != RP[I].val().numel(); ++J)
      ASSERT_EQ(RP[I].val()[J], SP[I].val()[J])
          << "param " << I << " element " << J;
  }
  std::remove(Path.c_str());
}

TEST(CheckpointTest, MidEpochResumeMatchesUninterruptedTraining) {
  // Checkpoint-every-N-steps: interrupt INSIDE an epoch (StopAfterSteps
  // is the deterministic interrupt), resume from the mid-epoch cursor,
  // and require the finished run to be bit-identical to one that never
  // stopped — weights, Adam state, shuffle order and epoch loss.
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  TrainOptions TO;
  TO.Epochs = 2;
  TO.BatchFiles = 2; // several steps per epoch, so step 3 is mid-epoch
  ASSERT_GT(WB.DS.Train.size(), 6u);

  std::unique_ptr<TypeModel> Ref = makeModel(MC, WB.DS, *WB.U);
  double RefLoss = trainModel(*Ref, WB.DS.Train, TO);

  std::string Path = tempArtifactPath("midckpt");
  std::unique_ptr<TypeModel> Cut = makeModel(MC, WB.DS, *WB.U);
  TrainOptions CutTO = TO;
  CutTO.CheckpointPath = Path;
  CutTO.CheckpointEverySteps = 2;
  CutTO.StopAfterSteps = 3; // stops (and checkpoints) inside epoch 1
  Trainer CutT(*Cut, CutTO);
  CutT.run(WB.DS.Train);
  EXPECT_EQ(CutT.epochsDone(), 0) << "the stop must land mid-epoch";

  std::unique_ptr<TypeModel> Resumed = makeModel(MC, WB.DS, *WB.U);
  Trainer ResumedT(*Resumed, TO);
  std::string Err;
  ASSERT_TRUE(ResumedT.resumeFrom(Path, &Err)) << Err;
  double ResLoss = ResumedT.run(WB.DS.Train);
  EXPECT_EQ(ResumedT.epochsDone(), 2);

  EXPECT_EQ(RefLoss, ResLoss) << "mid-epoch resumed loss diverged";
  const auto &RP = Ref->params().params();
  const auto &SP = Resumed->params().params();
  ASSERT_EQ(RP.size(), SP.size());
  for (size_t I = 0; I != RP.size(); ++I)
    for (int64_t J = 0; J != RP[I].val().numel(); ++J)
      ASSERT_EQ(RP[I].val()[J], SP[I].val()[J])
          << "param " << I << " element " << J;
  std::remove(Path.c_str());
}

TEST(CheckpointTest, TrainLoopWritesCheckpointWhenAsked) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Space);
  std::string Path = tempArtifactPath("autockpt");
  TrainOptions TO;
  TO.Epochs = 1;
  TO.CheckpointPath = Path;
  std::unique_ptr<TypeModel> M = makeModel(MC, WB.DS, *WB.U);
  trainModel(*M, WB.DS.Train, TO);
  EXPECT_FALSE(readFileBytes(Path).empty()) << "no checkpoint written";

  // And the written checkpoint is resumable.
  std::unique_ptr<TypeModel> M2 = makeModel(MC, WB.DS, *WB.U);
  Trainer T2(*M2, TO);
  std::string Err;
  ASSERT_TRUE(T2.resumeFrom(Path, &Err)) << Err;
  EXPECT_EQ(T2.epochsDone(), 1);
  std::remove(Path.c_str());
}

TEST(CheckpointTest, MismatchedModelIsRejected) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  TrainOptions TO;
  TO.Epochs = 1;
  std::unique_ptr<TypeModel> M = makeModel(MC, WB.DS, *WB.U);
  Trainer T(*M, TO);
  T.run(WB.DS.Train);
  std::string Path = tempArtifactPath("mismatch");
  std::string Err;
  ASSERT_TRUE(T.saveCheckpoint(Path, &Err)) << Err;

  // A model with a different hidden size cannot absorb the checkpoint.
  ModelConfig Wider = MC;
  Wider.HiddenDim = 16;
  std::unique_ptr<TypeModel> Other = makeModel(Wider, WB.DS, *WB.U);
  Trainer OtherT(*Other, TO);
  EXPECT_FALSE(OtherT.resumeFrom(Path, &Err));
  EXPECT_FALSE(Err.empty());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Layer-level round-trips
//===----------------------------------------------------------------------===//

TEST(ArtifactTest, TensorRoundTripIsExact) {
  Rng R(99);
  Tensor T = Tensor::randn(7, 5, R, 1.f);
  ArchiveWriter W(1);
  W.beginChunk("tens");
  nn::writeTensor(W, T);
  W.endChunk();
  ArchiveReader Rd;
  std::string Err;
  ASSERT_TRUE(Rd.openBytes(W.bytes(), &Err)) << Err;
  ArchiveCursor C = Rd.chunk("tens", &Err);
  Tensor Out;
  ASSERT_TRUE(nn::readTensor(C, Out));
  ASSERT_TRUE(Out.sameShape(T));
  for (int64_t I = 0; I != T.numel(); ++I)
    ASSERT_EQ(T[I], Out[I]);
  EXPECT_TRUE(C.atEnd());
}

TEST(ArtifactTest, AnnoyForestSnapshotAnswersIdentically) {
  TypeUniverse U;
  TypeMap Map(4);
  Rng R(123);
  std::vector<TypeRef> Pool = {U.parse("int"), U.parse("str"),
                               U.parse("List[int]")};
  for (int I = 0; I != 300; ++I) {
    float E[4];
    for (float &X : E)
      X = static_cast<float>(R.normal());
    Map.add(E, Pool[static_cast<size_t>(I) % Pool.size()]);
  }
  AnnoyIndex Built(Map);

  ArchiveWriter W(1);
  W.beginChunk("tmap");
  std::map<TypeRef, int> Ids = U.save(W);
  W.endChunk();
  (void)Ids;
  W.beginChunk("anny");
  Built.save(W);
  W.endChunk();

  ArchiveReader Rd;
  std::string Err;
  ASSERT_TRUE(Rd.openBytes(W.bytes(), &Err)) << Err;
  ArchiveCursor C = Rd.chunk("anny", &Err);
  std::unique_ptr<AnnoyIndex> Loaded = AnnoyIndex::load(C, Map, &Err);
  ASSERT_NE(Loaded, nullptr) << Err;

  for (int Q = 0; Q != 32; ++Q) {
    float Query[4];
    for (float &X : Query)
      X = static_cast<float>(R.normal());
    NeighborList A = Built.query(Query, 10);
    NeighborList B = Loaded->query(Query, 10);
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I != A.size(); ++I) {
      EXPECT_EQ(A[I].first, B[I].first);
      EXPECT_EQ(A[I].second, B[I].second);
    }
  }
}

TEST(ArtifactTest, CyclicForestSnapshotIsRejected) {
  // A CRC-valid snapshot whose split node links to itself must be
  // rejected at load: best-first query would otherwise never terminate.
  TypeUniverse U;
  TypeMap Map(2);
  float E[2] = {0.f, 1.f};
  Map.add(E, U.parse("int"));
  ArchiveWriter W(1);
  W.beginChunk("anny");
  W.writeI32(16);   // leaf size
  W.writeU64(1);    // one node...
  W.writeI32(0);    // ...that splits on dim 0
  W.writeF32(0.5f);
  W.writeI32(0);    // Left = itself
  W.writeI32(0);    // Right = itself
  W.writeU64(0);    // no items
  W.writeU64(1);    // one root: node 0
  W.writeI32(0);
  W.endChunk();
  ArchiveReader R;
  std::string Err;
  ASSERT_TRUE(R.openBytes(W.bytes(), &Err)) << Err;
  ArchiveCursor C = R.chunk("anny", &Err);
  EXPECT_EQ(AnnoyIndex::load(C, Map, &Err), nullptr);
  EXPECT_NE(Err.find("split node links"), std::string::npos) << Err;
}

TEST(CheckpointTest, ResumeOntoDifferentSplitRefusesToTrain) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  TrainOptions TO;
  TO.Epochs = 2;
  std::unique_ptr<TypeModel> M = makeModel(MC, WB.DS, *WB.U);
  Trainer T(*M, TO);
  T.run(WB.DS.Train);
  std::string Path = tempArtifactPath("wrongsplit");
  std::string Err;
  ASSERT_TRUE(T.saveCheckpoint(Path, &Err)) << Err;

  // Resume, then run against a split of a different size: the trainer
  // must refuse (NaN) instead of silently re-shuffling the wrong order.
  std::vector<FileExample> Smaller(WB.DS.Train.begin(),
                                   WB.DS.Train.end() - 1);
  ASSERT_NE(Smaller.size(), WB.DS.Train.size());
  std::unique_ptr<TypeModel> M2 = makeModel(MC, WB.DS, *WB.U);
  TrainOptions More = TO;
  More.Epochs = 3;
  Trainer T2(*M2, More);
  ASSERT_TRUE(T2.resumeFrom(Path, &Err)) << Err;
  EXPECT_TRUE(std::isnan(T2.run(Smaller)));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Quantized τmap stores (format version 2)
//===----------------------------------------------------------------------===//

class QuantizedArtifactTest : public ::testing::TestWithParam<MarkerStore> {};

// The quantized-store contract mirrors the f32 one: save -> load across
// process boundaries must predict bit-identically, because both sides
// run the SAME decoded coordinates through the SAME distance kernel.
TEST_P(QuantizedArtifactTest, LoadedQuantizedPredictorIsBitIdentical) {
  MarkerStore S = GetParam();
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  std::unique_ptr<TypeModel> M = trainTiny(WB, MC);
  KnnOptions KO;
  KO.Store = S;
  Predictor P = makePredictor(WB, *M, KO);
  ASSERT_EQ(P.typeMap().store(), S);
  EXPECT_EQ(P.artifactVersion(), 2u);

  std::string Path =
      tempArtifactPath(std::string("quant_") + markerStoreName(S));
  std::string Err;
  ASSERT_TRUE(P.save(Path, *WB.U, &Err)) << Err;

  auto InProc = P.predictAll(WB.DS.Test);
  ASSERT_FALSE(InProc.empty());

  std::unique_ptr<Predictor> L = Predictor::load(Path, &Err);
  ASSERT_NE(L, nullptr) << Err;
  ASSERT_TRUE(L->isKnn());
  EXPECT_EQ(L->typeMap().store(), S);
  EXPECT_EQ(L->knnOptions().Store, S);
  expectBitIdentical(InProc, L->predictAll(WB.DS.Test));
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Stores, QuantizedArtifactTest,
                         ::testing::Values(MarkerStore::F16, MarkerStore::Int8),
                         [](const auto &Info) {
                           return std::string(markerStoreName(Info.param));
                         });

// Forward compatibility: a predictor that never quantized writes the
// version-1 byte stream — old readers keep working, and the artifact is
// byte-identical to what a pre-quantization writer produced.
TEST(ArtifactTest, F32ArtifactStaysVersionOne) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  std::unique_ptr<TypeModel> M = trainTiny(WB, MC);
  Predictor P = makePredictor(WB, *M);
  EXPECT_EQ(P.artifactVersion(), 1u);

  std::string Path = tempArtifactPath("f32v1");
  std::string Err;
  ASSERT_TRUE(P.save(Path, *WB.U, &Err)) << Err;
  ArchiveReader R;
  ASSERT_TRUE(R.openBytes(readFileBytes(Path), &Err)) << Err;
  EXPECT_EQ(R.formatVersion(), 1u);
  EXPECT_TRUE(R.hasChunk("tmap"));
  EXPECT_FALSE(R.hasChunk("tm16"));
  EXPECT_FALSE(R.hasChunk("tmq8"));
  std::remove(Path.c_str());
}

// The version stamp follows the store: quantized artifacts carry version
// 2 and the store-specific chunk tag instead of "tmap".
TEST(ArtifactTest, QuantizedArtifactStampsVersionTwoAndStoreChunk) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  std::unique_ptr<TypeModel> M = trainTiny(WB, MC);
  KnnOptions KO;
  KO.Store = MarkerStore::Int8;
  Predictor P = makePredictor(WB, *M, KO);

  std::string Path = tempArtifactPath("int8v2");
  std::string Err;
  ASSERT_TRUE(P.save(Path, *WB.U, &Err)) << Err;
  ArchiveReader R;
  ASSERT_TRUE(R.openBytes(readFileBytes(Path), &Err)) << Err;
  EXPECT_EQ(R.formatVersion(), 2u);
  EXPECT_TRUE(R.hasChunk("tmq8"));
  EXPECT_FALSE(R.hasChunk("tmap"));
  std::remove(Path.c_str());
}

// The HNSW graph snapshot: version 3, the "hnsw" chunk, and a loaded
// predictor that answers from the snapshotted graph bit-identically to
// the in-process builder (the graph is deterministic in (Map, Seed), so
// snapshot-vs-rebuild is also identity — but load must not rebuild).
TEST(ArtifactTest, HnswArtifactStampsVersionThreeAndRoundTrips) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  std::unique_ptr<TypeModel> M = trainTiny(WB, MC);
  KnnOptions KO;
  KO.Index = KnnIndexKind::Hnsw;
  Predictor P = makePredictor(WB, *M, KO);
  EXPECT_EQ(P.artifactVersion(), 3u);

  std::string Path = tempArtifactPath("hnswv3");
  std::string Err;
  ASSERT_TRUE(P.save(Path, *WB.U, &Err)) << Err;
  ArchiveReader R;
  ASSERT_TRUE(R.openBytes(readFileBytes(Path), &Err)) << Err;
  EXPECT_EQ(R.formatVersion(), 3u);
  EXPECT_TRUE(R.hasChunk("hnsw"));
  EXPECT_TRUE(R.hasChunk("tmap")); // the store tag is orthogonal

  auto InProc = P.predictAll(WB.DS.Test);
  std::unique_ptr<Predictor> L = Predictor::load(Path, &Err);
  ASSERT_NE(L, nullptr) << Err;
  EXPECT_EQ(L->knnOptions().Index, KnnIndexKind::Hnsw);
  ASSERT_NE(L->hnswIndex(), nullptr);
  expectBitIdentical(InProc, L->predictAll(WB.DS.Test));
  std::remove(Path.c_str());
}

// Opting into HNSW is the ONLY way to version 3: exact and Annoy
// artifacts keep their historical stamp and carry no graph chunk, so
// pre-PR readers and byte-level artifact diffs are unaffected.
TEST(ArtifactTest, NonHnswArtifactsCarryNoGraphChunk) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  std::unique_ptr<TypeModel> M = trainTiny(WB, MC);
  for (KnnIndexKind Kind : {KnnIndexKind::Annoy, KnnIndexKind::Exact}) {
    KnnOptions KO;
    KO.Index = Kind;
    Predictor P = makePredictor(WB, *M, KO);
    EXPECT_EQ(P.artifactVersion(), 1u) << knnIndexName(Kind);
    std::string Path =
        tempArtifactPath(std::string("nograph_") + knnIndexName(Kind));
    std::string Err;
    ASSERT_TRUE(P.save(Path, *WB.U, &Err)) << Err;
    ArchiveReader R;
    ASSERT_TRUE(R.openBytes(readFileBytes(Path), &Err)) << Err;
    EXPECT_EQ(R.formatVersion(), 1u) << knnIndexName(Kind);
    EXPECT_FALSE(R.hasChunk("hnsw")) << knnIndexName(Kind);
    std::remove(Path.c_str());
  }
}

// Quantization is one-way: re-encoding an already-lossy store compounds
// the error, so setMarkerStore refuses anything but f32 -> X.
TEST(ArtifactTest, RequantizationIsRejected) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  std::unique_ptr<TypeModel> M = trainTiny(WB, MC);
  Predictor P = makePredictor(WB, *M);

  std::string Err;
  ASSERT_TRUE(P.setMarkerStore(MarkerStore::F16, &Err)) << Err;
  EXPECT_TRUE(P.setMarkerStore(MarkerStore::F16, &Err)); // same store: no-op
  EXPECT_FALSE(P.setMarkerStore(MarkerStore::Int8, &Err));
  EXPECT_NE(Err.find("one-way"), std::string::npos) << Err;
}

// Coreset subsampling survives the round trip: the loaded map has the
// subsampled marker count and predicts identically to the in-process
// subsampled predictor.
TEST(ArtifactTest, SubsampledMapRoundTrips) {
  Workbench WB = makeTinyWorkbench();
  ModelConfig MC = tinyConfig(EncoderKind::Graph, LossKind::Typilus);
  std::unique_ptr<TypeModel> M = trainTiny(WB, MC);
  KnnOptions Unbounded;
  Predictor Full = makePredictor(WB, *M, Unbounded);
  size_t FullSize = Full.typeMap().size();
  ASSERT_GT(FullSize, 20u);

  KnnOptions KO;
  KO.MaxMarkers = FullSize / 2;
  Predictor P = makePredictor(WB, *M, KO);
  EXPECT_EQ(P.typeMap().size(), KO.MaxMarkers);

  std::string Path = tempArtifactPath("coreset");
  std::string Err;
  ASSERT_TRUE(P.save(Path, *WB.U, &Err)) << Err;
  auto InProc = P.predictAll(WB.DS.Test);
  std::unique_ptr<Predictor> L = Predictor::load(Path, &Err);
  ASSERT_NE(L, nullptr) << Err;
  EXPECT_EQ(L->typeMap().size(), KO.MaxMarkers);
  expectBitIdentical(InProc, L->predictAll(WB.DS.Test));
  std::remove(Path.c_str());
}
