//===- tests/ServeTest.cpp - Serving pipeline tests ----------------------------===//
//
// The serving daemon's contract: batched prediction is bit-identical to
// single-shot prediction (any batch composition, any thread count), the
// request pipeline coalesces without changing responses, protocol errors
// (malformed JSON, oversized lines, mid-request disconnects) are answered
// or absorbed without taking the server down, and shutdown drains every
// queued request.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "serve/Server.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace typilus;
using namespace typilus::serve;

namespace {

//===----------------------------------------------------------------------===//
// Shared fixture: one tiny corpus + one trained kNN model. Training is
// the expensive part, so it happens once per suite.
//===----------------------------------------------------------------------===//

class ServeTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    CorpusConfig CC;
    CC.NumFiles = 14;
    CC.NumUdts = 8;
    DatasetConfig DC;
    DC.CommonThreshold = 2;
    WB = new Workbench(Workbench::make(CC, DC));

    ModelConfig MC; // Graph + Typilus, the serving headliner
    MC.HiddenDim = 8;
    MC.TimeSteps = 2;
    TrainOptions TO;
    TO.Epochs = 1;
    TO.BatchFiles = 4;
    Model = makeModel(MC, WB->DS, *WB->U).release();
    trainModel(*Model, WB->DS.Train, TO);

    std::vector<const FileExample *> MapFiles;
    for (const FileExample &F : WB->DS.Train)
      MapFiles.push_back(&F);
    for (const FileExample &F : WB->DS.Valid)
      MapFiles.push_back(&F);
    Pred = new Predictor(Predictor::knn(*Model, MapFiles));
  }

  static void TearDownTestSuite() {
    delete Pred;
    delete Model;
    delete WB;
    Pred = nullptr;
    Model = nullptr;
    WB = nullptr;
    setGlobalNumThreads(0);
  }

  /// A predict request over the I-th corpus file's real source text.
  static Request requestFor(size_t I, int64_t Id) {
    const CorpusFile &F = WB->Files[I % WB->Files.size()];
    Request R;
    R.Id = Id;
    R.M = Method::Predict;
    R.Path = F.Path;
    R.Source = F.Source;
    return R;
  }

  /// Submits \p Reqs and waits until each has its response; \p MaxBatch
  /// configures coalescing. Responses are indexed by request order.
  static std::vector<std::string> serveAll(std::vector<Request> Reqs,
                                           int MaxBatch,
                                           ServerStats *OutStats = nullptr) {
    ServerOptions SO;
    SO.MaxBatch = MaxBatch;
    Server S(*Pred, *WB->U, SO);
    std::vector<std::string> Responses(Reqs.size());
    std::atomic<size_t> Done{0};
    for (size_t I = 0; I != Reqs.size(); ++I)
      EXPECT_TRUE(S.submit(Reqs[I], [&Responses, &Done, I](std::string R) {
        Responses[I] = std::move(R);
        ++Done;
      }));
    S.stop(); // drains
    EXPECT_EQ(Done.load(), Reqs.size());
    if (OutStats)
      *OutStats = S.stats();
    return Responses;
  }

  static Workbench *WB;
  static TypeModel *Model;
  static Predictor *Pred;
};

Workbench *ServeTest::WB = nullptr;
TypeModel *ServeTest::Model = nullptr;
Predictor *ServeTest::Pred = nullptr;

void expectSamePredictions(const std::vector<PredictionResult> &A,
                           const std::vector<PredictionResult> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].FilePath, B[I].FilePath);
    EXPECT_EQ(A[I].TargetIdx, B[I].TargetIdx);
    EXPECT_EQ(A[I].SymbolName, B[I].SymbolName);
    ASSERT_EQ(A[I].Candidates.size(), B[I].Candidates.size());
    for (size_t C = 0; C != A[I].Candidates.size(); ++C) {
      EXPECT_EQ(A[I].Candidates[C].Type, B[I].Candidates[C].Type);
      // Bit-level, not approximate, equality.
      EXPECT_EQ(A[I].Candidates[C].Prob, B[I].Candidates[C].Prob);
    }
  }
}

//===----------------------------------------------------------------------===//
// predictBatch == predictFile (the bit-identity the daemon relies on)
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, PredictBatchIsBitIdenticalToPerFilePrediction) {
  std::vector<const FileExample *> Files;
  for (const FileExample &F : WB->DS.Test)
    Files.push_back(&F);
  ASSERT_GT(Files.size(), 1u);

  auto Batched = Pred->predictBatch(Files);
  ASSERT_EQ(Batched.size(), Files.size());
  std::vector<PredictionResult> Flat, Single;
  for (size_t I = 0; I != Files.size(); ++I) {
    auto One = Pred->predictFile(*Files[I]);
    Single.insert(Single.end(), One.begin(), One.end());
    Flat.insert(Flat.end(), Batched[I].begin(), Batched[I].end());
  }
  expectSamePredictions(Flat, Single);
  EXPECT_EQ(predictionDigest(Flat), predictionDigest(Single));
}

TEST_F(ServeTest, PredictBatchClassifierIsBitIdentical) {
  ModelConfig MC;
  MC.Loss = LossKind::Class;
  MC.HiddenDim = 8;
  MC.TimeSteps = 2;
  TrainOptions TO;
  TO.Epochs = 1;
  TO.BatchFiles = 4;
  std::unique_ptr<TypeModel> M = makeModel(MC, WB->DS, *WB->U);
  trainModel(*M, WB->DS.Train, TO);
  Predictor P = Predictor::classifier(*M);

  std::vector<const FileExample *> Files;
  for (const FileExample &F : WB->DS.Test)
    Files.push_back(&F);
  auto Batched = P.predictBatch(Files);
  std::vector<PredictionResult> Flat, Single;
  for (size_t I = 0; I != Files.size(); ++I) {
    auto One = P.predictFile(*Files[I]);
    Single.insert(Single.end(), One.begin(), One.end());
    Flat.insert(Flat.end(), Batched[I].begin(), Batched[I].end());
  }
  expectSamePredictions(Flat, Single);
}

//===----------------------------------------------------------------------===//
// The request pipeline
//===----------------------------------------------------------------------===//

TEST_F(ServeTest, CoalescedResponsesMatchUnbatchedServing) {
  std::vector<Request> Reqs;
  for (int I = 0; I != 12; ++I)
    Reqs.push_back(requestFor(static_cast<size_t>(I), I));

  ServerStats Batched, OneByOne;
  auto A = serveAll(Reqs, /*MaxBatch=*/8, &Batched);
  auto B = serveAll(Reqs, /*MaxBatch=*/1, &OneByOne);
  EXPECT_EQ(A, B); // byte-for-byte identical response lines

  EXPECT_EQ(Batched.Requests, 12u);
  EXPECT_EQ(OneByOne.Requests, 12u);
  EXPECT_EQ(OneByOne.MaxCoalesced, 1u);
  EXPECT_EQ(OneByOne.Batches, 12u);
  // All 12 were queued before the dispatcher woke, so coalescing must
  // have produced strictly fewer dispatches.
  EXPECT_LT(Batched.Batches, 12u);
  EXPECT_GT(Batched.MaxCoalesced, 1u);
}

TEST_F(ServeTest, ResponsesAreBitIdenticalAcrossThreadCounts) {
  std::vector<Request> Reqs;
  for (int I = 0; I != 8; ++I)
    Reqs.push_back(requestFor(static_cast<size_t>(I), I));

  // NumThreads = 1: every dispatch runs serially inline.
  setGlobalNumThreads(1);
  KnnOptions KO = Pred->knnOptions();
  KO.NumThreads = 1;
  Pred->setKnnOptions(KO);
  auto Serial = serveAll(Reqs, /*MaxBatch=*/8);

  setGlobalNumThreads(4);
  KO.NumThreads = 4;
  Pred->setKnnOptions(KO);
  auto Parallel = serveAll(Reqs, /*MaxBatch=*/8);

  setGlobalNumThreads(0);
  KO.NumThreads = 0;
  Pred->setKnnOptions(KO);

  EXPECT_EQ(Serial, Parallel);
}

TEST_F(ServeTest, ControlRequestsInterleaveWithPredicts) {
  ServerOptions SO;
  SO.MaxBatch = 16;
  Server S(*Pred, *WB->U, SO);
  std::mutex Mu;
  std::vector<std::string> Responses;
  auto Collect = [&](std::string R) {
    std::lock_guard<std::mutex> L(Mu);
    Responses.push_back(std::move(R));
  };
  Request Ping;
  Ping.Id = 100;
  Ping.M = Method::Ping;
  S.submit(requestFor(0, 1), Collect);
  S.submit(Ping, Collect);
  S.submit(requestFor(1, 2), Collect);
  S.stop();
  ASSERT_EQ(Responses.size(), 3u);
  // Arrival order is preserved even across the predict/control split.
  EXPECT_NE(Responses[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(Responses[1].find("\"pong\":true"), std::string::npos);
  EXPECT_NE(Responses[2].find("\"id\":2"), std::string::npos);
}

TEST_F(ServeTest, StopDrainsEveryQueuedRequest) {
  ServerOptions SO;
  SO.MaxBatch = 4;
  Server S(*Pred, *WB->U, SO);
  std::atomic<size_t> Done{0};
  const size_t N = 20;
  for (size_t I = 0; I != N; ++I)
    ASSERT_TRUE(S.submit(requestFor(I, static_cast<int64_t>(I)),
                         [&Done](std::string) { ++Done; }));
  S.stop(); // must answer all 20, not abandon the queue
  EXPECT_EQ(Done.load(), N);
  EXPECT_FALSE(S.submit(requestFor(0, 99), [](std::string) {}));
}

//===----------------------------------------------------------------------===//
// Protocol-level coverage over a real stream (serveStream end to end)
//===----------------------------------------------------------------------===//

class StreamHarness {
public:
  explicit StreamHarness(Server &S, size_t MaxRequestBytes = 1 << 16) {
    int Fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    Client = FileDesc(Fds[0]);
    ServerEnd = FileDesc(Fds[1]);
    int Fd = ServerEnd.fd();
    // Shared by value: the dispatcher may invoke the response sink after
    // serveStream already returned (e.g. right after a shutdown request).
    auto WriteMu = std::make_shared<std::mutex>();
    Reader = std::thread([&S, Fd, MaxRequestBytes, WriteMu] {
      serveStream(Fd, MaxRequestBytes, S, [Fd, WriteMu](std::string Resp) {
        std::lock_guard<std::mutex> L(*WriteMu);
        (void)writeAll(Fd, Resp);
      });
    });
  }

  ~StreamHarness() {
    closeClient();
    if (Reader.joinable())
      Reader.join();
  }

  void send(std::string_view Data) {
    ASSERT_TRUE(writeAll(Client.fd(), Data));
  }

  std::string readLine() {
    if (!R)
      R = std::make_unique<LineReader>(Client.fd(), 1 << 20);
    std::string Line;
    LineReader::Status St;
    do
      St = R->next(Line);
    while (St == LineReader::Status::Interrupted);
    EXPECT_EQ(St, LineReader::Status::Line);
    return Line;
  }

  void closeClient() { Client.reset(); }

private:
  FileDesc Client, ServerEnd;
  std::unique_ptr<LineReader> R;
  std::thread Reader;
};

TEST_F(ServeTest, MalformedJsonRequestGetsErrorResponse) {
  Server S(*Pred, *WB->U);
  StreamHarness H(S);
  H.send("{\"id\": 5, \"method\": \n");
  std::string Resp = H.readLine();
  EXPECT_NE(Resp.find("\"ok\":false"), std::string::npos) << Resp;
  EXPECT_NE(Resp.find("invalid JSON"), std::string::npos) << Resp;

  // Wrong shapes get specific errors and the recovered id.
  H.send("[1,2,3]\n");
  EXPECT_NE(H.readLine().find("must be a JSON object"), std::string::npos);
  H.send("{\"method\":\"predict\"}\n");
  EXPECT_NE(H.readLine().find("numeric \\\"id\\\""), std::string::npos);
  H.send("{\"id\":9,\"method\":\"teleport\"}\n");
  std::string Unknown = H.readLine();
  EXPECT_NE(Unknown.find("\"id\":9"), std::string::npos) << Unknown;
  EXPECT_NE(Unknown.find("unknown method"), std::string::npos) << Unknown;
  H.send("{\"id\":10,\"method\":\"predict\"}\n");
  EXPECT_NE(H.readLine().find("string \\\"source\\\""), std::string::npos);

  // The stream survived all of it: a well-formed request still works.
  H.send("{\"id\":11,\"method\":\"ping\"}\n");
  EXPECT_NE(H.readLine().find("\"pong\":true"), std::string::npos);
  S.stop();
}

TEST_F(ServeTest, OversizedRequestIsRejectedAndStreamRecovers) {
  Server S(*Pred, *WB->U);
  StreamHarness H(S, /*MaxRequestBytes=*/256);
  std::string Huge = "{\"id\":1,\"method\":\"predict\",\"source\":\"" +
                     std::string(4096, 'x') + "\"}\n";
  H.send(Huge);
  std::string Resp = H.readLine();
  EXPECT_NE(Resp.find("\"ok\":false"), std::string::npos) << Resp;
  EXPECT_NE(Resp.find("exceeds 256 bytes"), std::string::npos) << Resp;
  // Within-cap requests on the same connection still serve.
  H.send("{\"id\":2,\"method\":\"ping\"}\n");
  EXPECT_NE(H.readLine().find("\"pong\":true"), std::string::npos);
  S.stop();
}

TEST_F(ServeTest, MidRequestDisconnectLeavesServerServing) {
  Server S(*Pred, *WB->U);
  {
    StreamHarness H(S);
    H.send("{\"id\":1,\"method\":\"predict\",\"source\":\"def f(");
    // No newline, no complete request: the client vanishes mid-line.
    H.closeClient();
  } // harness joins its reader: serveStream saw Eof and returned
  {
    StreamHarness H2(S);
    H2.send("{\"id\":2,\"method\":\"ping\"}\n");
    EXPECT_NE(H2.readLine().find("\"pong\":true"), std::string::npos);
  }
  S.stop();
}

TEST_F(ServeTest, ShutdownRequestRespondsAndFiresHook) {
  std::atomic<bool> Fired{false};
  ServerOptions SO;
  SO.OnShutdown = [&Fired] { Fired = true; };
  Server S(*Pred, *WB->U, SO);
  StreamHarness H(S);
  H.send("{\"id\":7,\"method\":\"shutdown\"}\n");
  std::string Resp = H.readLine();
  EXPECT_NE(Resp.find("\"shutting_down\":true"), std::string::npos) << Resp;
  S.stop();
  EXPECT_TRUE(Fired.load());
}

TEST_F(ServeTest, IdenticalRequestsCollapseToOnePrediction) {
  // 10 concurrent requests for the same source (the CI smoke's shape):
  // one prediction, 10 responses, all carrying identical payloads under
  // their own ids.
  std::vector<Request> Reqs;
  for (int I = 0; I != 10; ++I)
    Reqs.push_back(requestFor(/*file=*/0, /*id=*/I));
  ServerStats St;
  auto Responses = serveAll(Reqs, /*MaxBatch=*/16, &St);
  EXPECT_GT(St.Collapsed, 0u);
  EXPECT_LE(St.Collapsed, 9u);

  // Responses must equal uncollapsed single-request serving bit for bit.
  auto Single = serveAll({Reqs[0]}, /*MaxBatch=*/1);
  for (size_t I = 0; I != Responses.size(); ++I) {
    std::string Expect = Single[0];
    std::string IdPatched = "{\"id\":" + std::to_string(I) + ",";
    Expect.replace(0, Expect.find(',') + 1, IdPatched);
    EXPECT_EQ(Responses[I], Expect);
  }

  // Distinct sources do not collapse.
  std::vector<Request> Distinct;
  for (int I = 0; I != 5; ++I)
    Distinct.push_back(requestFor(static_cast<size_t>(I), I));
  serveAll(Distinct, /*MaxBatch=*/16, &St);
  EXPECT_EQ(St.Collapsed, 0u);
}

TEST_F(ServeTest, StatsReportCoalescing) {
  std::vector<Request> Reqs;
  for (int I = 0; I != 6; ++I)
    Reqs.push_back(requestFor(static_cast<size_t>(I), I));
  ServerStats St;
  serveAll(Reqs, /*MaxBatch=*/16, &St);
  std::string Line = statsResponse(1, St);
  EXPECT_NE(Line.find("\"requests\":6"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"max_coalesced\":"), std::string::npos);
  // Per-request timing fields are always present; wall-clock values are
  // nondeterministic, so only the invariants are pinned.
  EXPECT_NE(Line.find("\"queue_wait_mean_us\":"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"queue_wait_max_us\":"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"predict_mean_us\":"), std::string::npos) << Line;
  EXPECT_NE(Line.find("\"predict_max_us\":"), std::string::npos) << Line;
  EXPECT_GE(St.QueueWaitMaxUs * St.Requests, St.QueueWaitTotalUs);
  EXPECT_GE(St.PredictMaxUs * St.Requests, St.PredictTotalUs);
  EXPECT_GT(St.PredictTotalUs, 0u) << "prediction took literally no time?";
}

TEST_F(ServeTest, StatsResetZeroesCountersAfterReporting) {
  ServerOptions SO;
  SO.MaxBatch = 16;
  Server S(*Pred, *WB->U, SO);
  std::mutex Mu;
  std::vector<std::string> Responses;
  auto Collect = [&](std::string R) {
    std::lock_guard<std::mutex> L(Mu);
    Responses.push_back(std::move(R));
  };
  for (int I = 0; I != 4; ++I)
    S.submit(requestFor(static_cast<size_t>(I), I), Collect);
  Request Reset;
  Reset.Id = 50;
  Reset.M = Method::Stats;
  Reset.Reset = true;
  S.submit(Reset, Collect);
  Request Probe;
  Probe.Id = 51;
  Probe.M = Method::Stats;
  S.submit(Probe, Collect);
  S.stop();
  ASSERT_EQ(Responses.size(), 6u);
  // The resetting response reports the counters as they were...
  EXPECT_NE(Responses[4].find("\"requests\":4"), std::string::npos)
      << Responses[4];
  // ...and the next probe sees a clean slate (reset happened atomically
  // with the snapshot: requests between the two would be counted anew).
  EXPECT_NE(Responses[5].find("\"requests\":0"), std::string::npos)
      << Responses[5];
  EXPECT_NE(Responses[5].find("\"predict_mean_us\":0"), std::string::npos)
      << Responses[5];
  EXPECT_EQ(S.stats().Requests, 0u);
}

} // namespace
