//===- tests/GraphTest.cpp - graph/ unit tests --------------------------------===//

#include "graph/Graph.h"

#include "pyfront/Parser.h"
#include "pyfront/SymbolTable.h"

#include <gtest/gtest.h>

#include <set>

using namespace typilus;

namespace {

struct Built {
  ParsedFile PF;
  SymbolTable ST;
  TypilusGraph G;
};

Built build(const std::string &Src, GraphBuildOptions Opts = {}) {
  Built B;
  B.PF = parseFile("t.py", Src);
  EXPECT_TRUE(B.PF.Diags.empty()) << "unexpected parse errors";
  buildSymbolTable(B.PF, B.ST);
  B.G = buildGraph(B.PF, B.ST, Opts);
  return B;
}

size_t countLabel(const TypilusGraph &G, EdgeLabel L) {
  return G.edgeCounts()[static_cast<size_t>(L)];
}

const GraphNode *findSymbolNode(const TypilusGraph &G,
                                const std::string &Name) {
  for (const GraphNode &N : G.Nodes)
    if (N.Category == NodeCategory::SymbolNode && N.Label == Name)
      return &N;
  return nullptr;
}

} // namespace

TEST(GraphTest, PaperFigure3Snippet) {
  // foo = get_foo(i, i + 1) — Fig. 3 of the paper.
  auto B = build("foo = get_foo(i, i + 1)\n");
  // Node categories all present.
  std::set<NodeCategory> Cats;
  for (const GraphNode &N : B.G.Nodes)
    Cats.insert(N.Category);
  EXPECT_TRUE(Cats.count(NodeCategory::Token));
  EXPECT_TRUE(Cats.count(NodeCategory::NonTerminal));
  EXPECT_TRUE(Cats.count(NodeCategory::Vocabulary));
  EXPECT_TRUE(Cats.count(NodeCategory::SymbolNode));
  // Vocabulary nodes: foo, get, i, 1 is a literal (no vocab), and `get_foo`
  // shares "foo"/"get".
  bool HasFoo = false, HasGet = false;
  for (const GraphNode &N : B.G.Nodes)
    if (N.Category == NodeCategory::Vocabulary) {
      HasFoo |= N.Label == "foo";
      HasGet |= N.Label == "get";
    }
  EXPECT_TRUE(HasFoo);
  EXPECT_TRUE(HasGet);
  // All eight-label families that apply here are present.
  EXPECT_GT(countLabel(B.G, EdgeLabel::NextToken), 0u);
  EXPECT_GT(countLabel(B.G, EdgeLabel::Child), 0u);
  EXPECT_GT(countLabel(B.G, EdgeLabel::OccurrenceOf), 0u);
  EXPECT_GT(countLabel(B.G, EdgeLabel::SubtokenOf), 0u);
  EXPECT_GT(countLabel(B.G, EdgeLabel::AssignedFrom), 0u);
}

TEST(GraphTest, NextTokenFormsAChain) {
  auto B = build("a = b + c\n");
  // Tokens: a = b + c -> 4 NEXT_TOKEN edges between 5 lexemes.
  EXPECT_EQ(countLabel(B.G, EdgeLabel::NextToken), 4u);
}

TEST(GraphTest, AnnotationTokensAreInvisible) {
  auto Annotated = build("def f(x: int) -> str:\n    return 'a'\n");
  auto Plain = build("def f(x):\n    return 'a'\n");
  // Same number of token nodes: the annotation lexemes are skipped.
  size_t TokA = 0, TokP = 0;
  for (const GraphNode &N : Annotated.G.Nodes)
    TokA += N.Category == NodeCategory::Token;
  for (const GraphNode &N : Plain.G.Nodes)
    TokP += N.Category == NodeCategory::Token;
  EXPECT_EQ(TokA, TokP);
  // But the ground truth is still recorded on the supernode.
  bool FoundParam = false;
  for (const Supernode &S : Annotated.G.Supernodes)
    if (S.Kind == SymbolKind::Parameter && S.Name == "x") {
      FoundParam = true;
      EXPECT_EQ(S.AnnotationText, "int");
    }
  EXPECT_TRUE(FoundParam);
}

TEST(GraphTest, OccurrenceOfLinksAllUses) {
  auto B = build("x = 1\ny = x + x\n");
  const GraphNode *Sym = findSymbolNode(B.G, "x");
  ASSERT_NE(Sym, nullptr);
  int SymIdx = static_cast<int>(Sym - B.G.Nodes.data());
  size_t Occ = 0;
  for (const GraphEdge &E : B.G.Edges)
    if (E.Label == EdgeLabel::OccurrenceOf && E.Dst == SymIdx)
      ++Occ;
  EXPECT_EQ(Occ, 3u); // one store, two loads
}

TEST(GraphTest, ReturnsToConnectsReturnAndYield) {
  auto B = build("def f():\n    yield 1\n    return 2\n");
  EXPECT_EQ(countLabel(B.G, EdgeLabel::ReturnsTo), 2u);
}

TEST(GraphTest, ReturnSupernodeExists) {
  auto B = build("def f() -> int:\n    return 1\n");
  bool Found = false;
  for (const Supernode &S : B.G.Supernodes)
    if (S.Kind == SymbolKind::Return) {
      Found = true;
      EXPECT_EQ(S.AnnotationText, "int");
      EXPECT_EQ(S.Name, "f");
    }
  EXPECT_TRUE(Found);
}

TEST(GraphTest, SubtokenSharingAcrossIdentifiers) {
  // numNodes and getNodes share the "nodes" vocabulary node (paper Sec 5.1).
  auto B = build("numNodes = getNodes()\n");
  const GraphNode *Vocab = nullptr;
  for (const GraphNode &N : B.G.Nodes)
    if (N.Category == NodeCategory::Vocabulary && N.Label == "nodes")
      Vocab = &N;
  ASSERT_NE(Vocab, nullptr);
  int VIdx = static_cast<int>(Vocab - B.G.Nodes.data());
  std::set<int> Sources;
  for (const GraphEdge &E : B.G.Edges)
    if (E.Label == EdgeLabel::SubtokenOf && E.Dst == VIdx)
      Sources.insert(E.Src);
  EXPECT_EQ(Sources.size(), 2u);
}

TEST(GraphTest, AblationOptionsRemoveEdgeFamilies) {
  const std::string Src = "def f(a):\n"
                          "    b = a + 1\n"
                          "    if b:\n"
                          "        b = b - 1\n"
                          "    return b\n";
  auto Full = build(Src);
  auto NoTok = build(Src, GraphBuildOptions::noNextToken());
  auto NoChild = build(Src, GraphBuildOptions::noChild());
  auto NoUse = build(Src, GraphBuildOptions::noNextUse());
  auto NoSyn = build(Src, GraphBuildOptions::noSyntactic());

  EXPECT_GT(countLabel(Full.G, EdgeLabel::NextToken), 0u);
  EXPECT_EQ(countLabel(NoTok.G, EdgeLabel::NextToken), 0u);
  EXPECT_GT(countLabel(NoTok.G, EdgeLabel::Child), 0u);

  EXPECT_EQ(countLabel(NoChild.G, EdgeLabel::Child), 0u);
  EXPECT_EQ(countLabel(NoUse.G, EdgeLabel::NextMayUse), 0u);
  EXPECT_EQ(countLabel(NoUse.G, EdgeLabel::NextLexicalUse), 0u);
  EXPECT_GT(countLabel(Full.G, EdgeLabel::NextMayUse), 0u);

  EXPECT_EQ(countLabel(NoSyn.G, EdgeLabel::NextToken), 0u);
  EXPECT_EQ(countLabel(NoSyn.G, EdgeLabel::Child), 0u);
  EXPECT_GT(countLabel(NoSyn.G, EdgeLabel::OccurrenceOf), 0u);
}

TEST(GraphTest, EdgesReferenceValidNodes) {
  auto B = build("class C:\n"
                 "    def m(self, v):\n"
                 "        self.x = v\n"
                 "        return self.x\n"
                 "c = C()\n"
                 "r = c.m(3)\n");
  for (const GraphEdge &E : B.G.Edges) {
    ASSERT_GE(E.Src, 0);
    ASSERT_GE(E.Dst, 0);
    ASSERT_LT(static_cast<size_t>(E.Src), B.G.numNodes());
    ASSERT_LT(static_cast<size_t>(E.Dst), B.G.numNodes());
    EXPECT_NE(E.Src, E.Dst);
  }
}

TEST(GraphTest, SelfAttributeHasSupernode) {
  auto B = build("class P:\n"
                 "    def __init__(self, x: float):\n"
                 "        self.coord = x\n");
  bool Found = false;
  for (const Supernode &S : B.G.Supernodes)
    if (S.Kind == SymbolKind::Attribute && S.Name == "coord")
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(GraphTest, AssignedFromPointsRhsToLhs) {
  auto B = build("total = 1 + 2\n");
  ASSERT_EQ(countLabel(B.G, EdgeLabel::AssignedFrom), 1u);
  for (const GraphEdge &E : B.G.Edges)
    if (E.Label == EdgeLabel::AssignedFrom) {
      // Dst must be the token node of `total`.
      EXPECT_EQ(B.G.Nodes[E.Dst].Label, "total");
      EXPECT_EQ(B.G.Nodes[E.Src].Label, "BinOp_+");
    }
}

TEST(GraphTest, SupernodesCoverAllTargetKinds) {
  auto B = build("def area(w: float, h: float) -> float:\n"
                 "    result = w * h\n"
                 "    return result\n");
  std::set<SymbolKind> Kinds;
  for (const Supernode &S : B.G.Supernodes)
    Kinds.insert(S.Kind);
  EXPECT_TRUE(Kinds.count(SymbolKind::Parameter));
  EXPECT_TRUE(Kinds.count(SymbolKind::Return));
  EXPECT_TRUE(Kinds.count(SymbolKind::Variable));
}

TEST(GraphTest, GraphIsDeterministic) {
  const std::string Src = "def f(a, b):\n    return a + b\n";
  auto B1 = build(Src);
  auto B2 = build(Src);
  ASSERT_EQ(B1.G.numNodes(), B2.G.numNodes());
  ASSERT_EQ(B1.G.numEdges(), B2.G.numEdges());
  for (size_t I = 0; I != B1.G.numEdges(); ++I) {
    EXPECT_EQ(B1.G.Edges[I].Src, B2.G.Edges[I].Src);
    EXPECT_EQ(B1.G.Edges[I].Dst, B2.G.Edges[I].Dst);
    EXPECT_EQ(B1.G.Edges[I].Label, B2.G.Edges[I].Label);
  }
}
