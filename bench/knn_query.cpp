//===- bench/knn_query.cpp - kNN index query latency and recall ----------------===//
//
// The crawl-scale query engine head-to-head: the legacy exact scan
// (materialize + partial_sort), the blocked exact scan (tiled, bounded
// heap), the Annoy-style forest and the deterministic HNSW graph, over
// growing marker counts. Reports per-query latency, build time and
// recall@10 against the exact answer — the trade surface behind
// KnnOptions::Index. Records via tools/record_bench.sh as
// BENCH_knn_query.json.
//
// Acceptance anchors: blocked >= 2x the legacy scan single-threaded at
// >= 10k markers; HNSW recall@10 >= 0.95 with per-query cost that grows
// sublinearly in the marker count.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "knn/TypeMap.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <set>
#include <vector>

using namespace typilus;
using namespace typilus::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// A synthetic τmap at a controlled marker count (benching the index
/// layer needs no trained model — markers are just points with types).
TypeMap makeMap(TypeUniverse &U, int N, int D, uint64_t Seed) {
  TypeMap Map(D);
  Rng R(Seed);
  std::vector<float> P(static_cast<size_t>(D));
  for (int I = 0; I != N; ++I) {
    for (float &X : P)
      X = static_cast<float>(R.normal());
    Map.add(P.data(), U.get(strformat("T%d", static_cast<int>(
                                                 R.uniformInt(64)))));
  }
  return Map;
}

double recallAt10(const std::vector<NeighborList> &Truth,
                  const std::vector<NeighborList> &Got) {
  double Sum = 0;
  for (size_t Q = 0; Q != Truth.size(); ++Q) {
    std::set<int> TruthSet;
    for (auto [I, D] : Truth[Q])
      TruthSet.insert(I);
    int Hits = 0;
    for (auto [I, D] : Got[Q])
      Hits += TruthSet.count(I);
    Sum += Truth[Q].empty()
               ? 1.0
               : static_cast<double>(Hits) / static_cast<double>(Truth[Q].size());
  }
  return Truth.empty() ? 1.0 : Sum / static_cast<double>(Truth.size());
}

} // namespace

int main() {
  banner("kNN query engines: exact (legacy vs blocked), Annoy, HNSW",
         "the Sec. 5 serving path at crawl scale");

  const int D = 32, K = 10, NumQ = 200;
  TextTable T;
  T.setHeader({"markers", "engine", "build (ms)", "query 1t (us)",
               "query mt (us)", "recall@10", "vs legacy 1t"});

  for (int N : {2000, 10000, 40000}) {
    TypeUniverse U;
    TypeMap Map = makeMap(U, N, D, /*Seed=*/77);
    Rng R(78);
    std::vector<float> Qs(static_cast<size_t>(NumQ) * D);
    for (float &X : Qs)
      X = static_cast<float>(R.normal());

    // Legacy exact: the pre-blocking scan, one query at a time (it had
    // no tiling to amortize), single-threaded — the baseline every
    // speedup column is against.
    ExactIndex Exact(Map);
    auto T0 = std::chrono::steady_clock::now();
    std::vector<NeighborList> Truth(static_cast<size_t>(NumQ));
    for (int Q = 0; Q != NumQ; ++Q)
      Truth[static_cast<size_t>(Q)] = Exact.queryLegacy(Qs.data() + Q * D, K);
    double LegacyUs = secondsSince(T0) / NumQ * 1e6;
    T.addRow({strformat("%d", N), "exact legacy", "-",
              strformat("%.1f", LegacyUs), "-", "1.000", "1.00x"});

    // Blocked exact: same bits, tiled through the marker store.
    T0 = std::chrono::steady_clock::now();
    auto Blocked1 = Exact.queryBatch(Qs.data(), NumQ, K, /*MaxWays=*/1);
    double Blocked1Us = secondsSince(T0) / NumQ * 1e6;
    T0 = std::chrono::steady_clock::now();
    auto BlockedMt = Exact.queryBatch(Qs.data(), NumQ, K);
    double BlockedMtUs = secondsSince(T0) / NumQ * 1e6;
    if (Blocked1 != Truth || BlockedMt != Truth) {
      std::fprintf(stderr, "error: blocked scan diverged from legacy\n");
      return 1;
    }
    T.addRow({strformat("%d", N), "exact blocked",
              "-", strformat("%.1f", Blocked1Us),
              strformat("%.1f", BlockedMtUs), "1.000",
              strformat("%.2fx", LegacyUs / Blocked1Us)});

    // Annoy forest at the Predictor's build parameters.
    T0 = std::chrono::steady_clock::now();
    AnnoyIndex Annoy(Map, /*NumTrees=*/8, /*LeafSize=*/16, /*Seed=*/0xA220);
    double AnnoyBuildMs = secondsSince(T0) * 1e3;
    T0 = std::chrono::steady_clock::now();
    std::vector<NeighborList> AnnoyGot(static_cast<size_t>(NumQ));
    for (int Q = 0; Q != NumQ; ++Q)
      AnnoyGot[static_cast<size_t>(Q)] = Annoy.query(Qs.data() + Q * D, K);
    double Annoy1Us = secondsSince(T0) / NumQ * 1e6;
    T0 = std::chrono::steady_clock::now();
    auto AnnoyMt = Annoy.queryBatch(Qs.data(), NumQ, K);
    double AnnoyMtUs = secondsSince(T0) / NumQ * 1e6;
    T.addRow({strformat("%d", N), "annoy", strformat("%.1f", AnnoyBuildMs),
              strformat("%.1f", Annoy1Us), strformat("%.1f", AnnoyMtUs),
              strformat("%.3f", recallAt10(Truth, AnnoyGot)),
              strformat("%.2fx", LegacyUs / Annoy1Us)});

    // HNSW graph at the Predictor's build parameters, default query
    // budget (EfSearch = max(4k, 64)).
    T0 = std::chrono::steady_clock::now();
    HnswIndex Hnsw(Map, /*M=*/16, /*EfConstruction=*/128, /*Seed=*/0x45317);
    double HnswBuildMs = secondsSince(T0) * 1e3;
    T0 = std::chrono::steady_clock::now();
    std::vector<NeighborList> HnswGot(static_cast<size_t>(NumQ));
    for (int Q = 0; Q != NumQ; ++Q)
      HnswGot[static_cast<size_t>(Q)] = Hnsw.query(Qs.data() + Q * D, K);
    double Hnsw1Us = secondsSince(T0) / NumQ * 1e6;
    T0 = std::chrono::steady_clock::now();
    auto HnswMt = Hnsw.queryBatch(Qs.data(), NumQ, K);
    double HnswMtUs = secondsSince(T0) / NumQ * 1e6;
    T.addRow({strformat("%d", N), "hnsw", strformat("%.1f", HnswBuildMs),
              strformat("%.1f", Hnsw1Us), strformat("%.1f", HnswMtUs),
              strformat("%.3f", recallAt10(Truth, HnswGot)),
              strformat("%.2fx", LegacyUs / Hnsw1Us)});

    // The per-request budget knob: a 4x beam buys back the recall the
    // default trades away at larger marker counts, still sublinear.
    T0 = std::chrono::steady_clock::now();
    std::vector<NeighborList> HnswWide(static_cast<size_t>(NumQ));
    for (int Q = 0; Q != NumQ; ++Q)
      HnswWide[static_cast<size_t>(Q)] =
          Hnsw.query(Qs.data() + Q * D, K, /*EfSearch=*/256);
    double HnswWideUs = secondsSince(T0) / NumQ * 1e6;
    T.addRow({strformat("%d", N), "hnsw ef=256", "-",
              strformat("%.1f", HnswWideUs), "-",
              strformat("%.3f", recallAt10(Truth, HnswWide)),
              strformat("%.2fx", LegacyUs / HnswWideUs)});
  }

  std::printf("%s", T.renderAscii().c_str());
  std::printf(
      "\n(query 1t = per-query latency single-threaded; mt = queryBatch on\n"
      "the full pool. Exact engines are bit-identical by construction —\n"
      "the blocked row is verified against legacy in-run. HNSW queries use\n"
      "the default per-request budget; KnnOptions::EfSearch raises recall\n"
      "at the cost of latency.)\n");
  return 0;
}
