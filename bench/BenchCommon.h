//===- bench/BenchCommon.h - Shared bench scaffolding --------------*- C++ -*-===//
//
// Part of the Typilus C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure bench binaries: the standard
/// workbench construction at the env-configurable scale, and uniform
/// banner printing. Each bench regenerates one table or figure of the
/// paper's evaluation (see docs/BENCHMARKS.md's per-experiment index).
///
//===----------------------------------------------------------------------===//

#ifndef TYPILUS_BENCH_BENCHCOMMON_H
#define TYPILUS_BENCH_BENCHCOMMON_H

#include "core/Experiments.h"
#include "support/Str.h"
#include "support/Table.h"

#include <cstdio>

namespace typilus {
namespace bench {

inline void banner(const char *What, const char *PaperRef) {
  std::printf("==============================================================="
              "=\n%s\n(reproduces %s of Typilus, PLDI 2020 — shapes, not "
              "absolute values)\n"
              "================================================================"
              "\n",
              What, PaperRef);
}

/// The default experiment environment used by the accuracy benches.
inline Workbench makeBench(const BenchScale &S, uint64_t Seed = 20200613,
                           GraphBuildOptions GO = {}) {
  CorpusConfig CC;
  CC.NumFiles = S.NumFiles;
  CC.Seed = Seed;
  DatasetConfig DC;
  DC.GraphOpts = GO;
  return Workbench::make(CC, DC);
}

inline TrainOptions makeTrainOptions(const BenchScale &S) {
  TrainOptions TO;
  TO.Epochs = S.Epochs;
  return TO;
}

} // namespace bench
} // namespace typilus

#endif // TYPILUS_BENCH_BENCHCOMMON_H
