//===- bench/serve_throughput.cpp - Serving daemon throughput ------------------===//
//
// Measures the serving pipeline behind typilus_serve: requests per second
// for one-request-at-a-time serving (MaxBatch = 1, the process-per-file
// deployment's steady-state equivalent) versus the batched pipeline
// (MaxBatch = 32: coalescing + identical-request collapsing + data-parallel
// embeds + one bulk τmap probe), at 1 and 4 threads, over two request
// traces:
//
//   fleet   50 concurrent requests for ONE file — the shape of the CI
//           daemon smoke and of a CI/IDE fleet re-checking a hot file.
//   mixed   8 concurrent clients × the same 12-file project (96 requests,
//           interleaved) — a CI matrix re-checking one changed project.
//   unique  48 requests, all distinct files — the no-overlap floor, where
//           batching can only win through request-level parallelism
//           (visible on multi-core hosts, not on 1-core containers).
//
// Responses are bit-identical across all modes (tests/ServeTest.cpp), so
// this measures pure pipeline efficiency. The batching comparison runs
// with the response cache OFF — a repeat-heavy trace would otherwise be
// answered from the cache in both modes and measure nothing. The cache
// gets its own section: a many-connection TCP soak over real loopback
// sockets (the daemon's own acceptLoop), repeat-heavy so hits dominate,
// cache on vs cache off. Records via tools/record_bench.sh as
// BENCH_serve_throughput.json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "serve/Server.h"
#include "support/Json.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include <unistd.h>

using namespace typilus;
using namespace typilus::bench;
using namespace typilus::serve;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

struct Trace {
  const char *Name;
  std::vector<Request> Reqs;
};

/// Serves \p Reqs through a fresh Server and returns requests/second
/// (submit of the first request to arrival of the last response).
double serveTrace(Predictor &P, TypeUniverse &U, const Trace &T,
                  int MaxBatch) {
  ServerOptions SO;
  SO.MaxBatch = MaxBatch;
  // Cache off: this comparison isolates coalescing + collapsing + batch
  // parallelism, the PR-4 pipeline. The soak below measures the cache.
  SO.CacheEntries = 0;
  Server S(P, U, SO);
  std::mutex Mu;
  std::condition_variable CV;
  size_t Done = 0;
  auto T0 = std::chrono::steady_clock::now();
  for (const Request &R : T.Reqs)
    S.submit(R, [&](std::string) {
      std::lock_guard<std::mutex> L(Mu);
      if (++Done == T.Reqs.size())
        CV.notify_one();
    });
  {
    std::unique_lock<std::mutex> L(Mu);
    CV.wait(L, [&] { return Done == T.Reqs.size(); });
  }
  double Sec = secondsSince(T0);
  S.stop();
  return static_cast<double>(T.Reqs.size()) / Sec;
}

/// The TCP soak: \p Clients connections against a real loopback daemon
/// (TcpListener + acceptLoop, the `typilus_serve --port` code path),
/// each pipelining \p PerClient predict requests that cycle through
/// \p DistinctFiles files — so after the first cycle every request is a
/// repeat and, with the cache on, a hit. Returns requests/second over
/// the whole soak; daemon-side counters land in \p OutStats.
double tcpSoak(Predictor &P, TypeUniverse &U, const Workbench &WB,
               int Clients, int PerClient, size_t DistinctFiles,
               int CacheEntries, ServerStats *OutStats) {
  ServerOptions SO;
  SO.MaxBatch = 32;
  SO.CacheEntries = CacheEntries;
  Server S(P, U, SO);

  int Wake[2];
  if (::pipe(Wake) != 0) {
    std::perror("pipe");
    return 0;
  }
  TcpListener TL;
  std::string Err;
  if (!TL.listenOn("127.0.0.1", 0, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 0;
  }
  AcceptLoopOptions AO;
  AO.WakeFd = Wake[0];
  AO.OnWake = [&Wake] {
    char B[8];
    (void)!read(Wake[0], B, sizeof(B));
    return true; // only poked to drain
  };
  AO.OnDrainStart = [&TL] { TL.close(); };
  int ListenFd = TL.fd();
  std::thread Loop([&S, ListenFd, &AO] { acceptLoop({ListenFd}, S, AO); });
  uint16_t Port = TL.port();

  auto T0 = std::chrono::steady_clock::now();
  std::atomic<int> Failures{0};
  std::vector<std::thread> Workers;
  for (int C = 0; C != Clients; ++C)
    Workers.emplace_back([&, C] {
      FileDesc Fd;
      std::string E;
      if (!connectTcp("127.0.0.1", Port, Fd, &E)) {
        ++Failures;
        return;
      }
      // Pipeline: all requests out, then all responses in (per-
      // connection response order matches submission order).
      std::string Out;
      for (int I = 0; I != PerClient; ++I) {
        const CorpusFile &F =
            WB.Files[(static_cast<size_t>(C) + static_cast<size_t>(I)) %
                     DistinctFiles];
        Out += "{\"id\":" + std::to_string(I) +
               ",\"method\":\"predict\",\"path\":" + json::quoted(F.Path) +
               ",\"source\":" + json::quoted(F.Source) + "}\n";
      }
      if (!writeAll(Fd.fd(), Out)) {
        ++Failures;
        return;
      }
      LineReader R(Fd.fd(), 256u << 20);
      std::string Line;
      for (int I = 0; I != PerClient; ++I) {
        LineReader::Status St;
        do
          St = R.next(Line);
        while (St == LineReader::Status::Interrupted);
        if (St != LineReader::Status::Line) {
          ++Failures;
          return;
        }
      }
    });
  for (std::thread &W : Workers)
    W.join();
  double Sec = secondsSince(T0);

  char B = 1;
  (void)!write(Wake[1], &B, 1);
  Loop.join(); // acceptLoop drains and stops the server
  ::close(Wake[0]);
  ::close(Wake[1]);
  if (OutStats)
    *OutStats = S.stats();
  if (Failures.load())
    std::fprintf(stderr, "warning: %d soak clients failed\n", Failures.load());
  return static_cast<double>(Clients) * PerClient / Sec;
}

} // namespace

int main() {
  banner("Serving throughput: batched pipeline vs one-request-at-a-time",
         "the Fig. 1 deployment loop");
  BenchScale S = BenchScale::fromEnv();
  Workbench WB = makeBench(S);
  ModelConfig MC; // Graph + Typilus, the artifact typilus_serve loads
  TrainOptions TO = makeTrainOptions(S);
  // Weight quality does not affect serving speed; cap the training cost.
  TO.Epochs = std::min(TO.Epochs, 4);
  std::printf("training on %zu files, %d epochs...\n", WB.DS.Train.size(),
              TO.Epochs);
  std::unique_ptr<TypeModel> Model = makeModel(MC, WB.DS, *WB.U);
  trainModel(*Model, WB.DS.Train, TO);
  std::vector<const FileExample *> MapFiles;
  for (const FileExample &F : WB.DS.Train)
    MapFiles.push_back(&F);
  for (const FileExample &F : WB.DS.Valid)
    MapFiles.push_back(&F);
  Predictor P = Predictor::knn(*Model, MapFiles);
  std::printf("τmap: %zu markers\n\n", P.typeMap().size());

  auto RequestFor = [&](size_t File, int64_t Id) {
    const CorpusFile &F = WB.Files[File % WB.Files.size()];
    Request R;
    R.Id = Id;
    R.M = Method::Predict;
    R.Path = F.Path;
    R.Source = F.Source;
    return R;
  };
  std::vector<Trace> Traces(3);
  Traces[0].Name = "fleet";
  for (int I = 0; I != 50; ++I)
    Traces[0].Reqs.push_back(RequestFor(0, I));
  Traces[1].Name = "mixed";
  for (int I = 0; I != 96; ++I)
    Traces[1].Reqs.push_back(RequestFor(static_cast<size_t>(I) % 12, I));
  Traces[2].Name = "unique";
  // Capped at the corpus size: RequestFor wraps modulo the file list, and
  // duplicates would silently collapse — no longer the no-overlap floor
  // this trace exists to measure (matters at TYPILUS_BENCH_FILES < 48).
  size_t UniqueN = std::min<size_t>(48, WB.Files.size());
  for (size_t I = 0; I != UniqueN; ++I)
    Traces[2].Reqs.push_back(RequestFor(I, static_cast<int64_t>(I)));

  TextTable Tbl;
  Tbl.setHeader({"trace", "threads", "one-at-a-time req/s", "batched req/s",
                 "speedup"});
  double SpeedupAt4 = 0; // mixed trace, the headline number
  for (int Threads : {1, 4}) {
    setGlobalNumThreads(Threads);
    KnnOptions KO = P.knnOptions();
    KO.NumThreads = Threads;
    P.setKnnOptions(KO);
    for (const Trace &T : Traces) {
      serveTrace(P, *WB.U, T, 1); // warm caches and the pool
      double Sequential = serveTrace(P, *WB.U, T, 1);
      double Batched = serveTrace(P, *WB.U, T, 32);
      double Speedup = Batched / Sequential;
      Tbl.addRow({T.Name, std::to_string(Threads),
                  strformat("%.1f", Sequential), strformat("%.1f", Batched),
                  strformat("%.2fx", Speedup)});
      std::printf("trace=%s threads=%d sequential_rps=%.1f batched_rps=%.1f "
                  "speedup=%.2f\n",
                  T.Name, Threads, Sequential, Batched, Speedup);
      if (Threads == 4 && std::string(T.Name) == "mixed")
        SpeedupAt4 = Speedup;
    }
  }
  std::printf("\n%s\n", Tbl.renderAscii().c_str());
  std::printf("batched_vs_sequential_speedup@4threads: %.2fx (mixed trace)\n",
              SpeedupAt4);

  // The TCP soak: real loopback connections, repeat-heavy load, response
  // cache off vs on. 8 connections cycling through 6 files, 60 requests
  // each — after the first cycle the cache answers everything without
  // embedding.
  banner("TCP soak: response cache off vs on",
         "8 connections x 60 repeat-heavy requests over real sockets");
  setGlobalNumThreads(4);
  KnnOptions KO = P.knnOptions();
  KO.NumThreads = 4;
  P.setKnnOptions(KO);
  size_t Distinct = std::min<size_t>(6, WB.Files.size());
  ServerStats Cold, Warm;
  double RpsOff = tcpSoak(P, *WB.U, WB, /*Clients=*/8, /*PerClient=*/60,
                          Distinct, /*CacheEntries=*/0, &Cold);
  double RpsOn = tcpSoak(P, *WB.U, WB, /*Clients=*/8, /*PerClient=*/60,
                         Distinct, /*CacheEntries=*/1024, &Warm);
  setGlobalNumThreads(0);
  std::printf("tcp_soak_cache_off_rps=%.1f tcp_soak_cache_on_rps=%.1f\n",
              RpsOff, RpsOn);
  std::printf("tcp_soak cache on: %llu hits / %llu misses / %llu evictions\n",
              static_cast<unsigned long long>(Warm.CacheHits),
              static_cast<unsigned long long>(Warm.CacheMisses),
              static_cast<unsigned long long>(Warm.CacheEvictions));
  std::printf("tcp_soak_cache_speedup: %.2fx\n",
              RpsOff > 0 ? RpsOn / RpsOff : 0.0);
  return 0;
}
