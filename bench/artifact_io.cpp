//===- bench/artifact_io.cpp - Model artifact save/load throughput -------------===//
//
// Measures the train-once / serve-many mechanics: how big a serving
// artifact is, how fast it saves and loads, and how much faster loading a
// snapshot is than rebuilding the τmap + Annoy forest from the model —
// the number that decides how quickly a fleet of serving processes can
// come up (ROADMAP north star). Records via tools/record_bench.sh as
// BENCH_artifact_io.json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>

using namespace typilus;
using namespace typilus::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

int main() {
  banner("Artifact I/O: save/load throughput and cold-start speedup",
         "the Fig. 1 offline/online split");
  BenchScale S = BenchScale::fromEnv();
  Workbench WB = makeBench(S);
  ModelConfig MC; // Graph + Typilus, the headline variant
  TrainOptions TO = makeTrainOptions(S);
  std::printf("training on %zu files, %d epochs...\n", WB.DS.Train.size(),
              TO.Epochs);
  std::unique_ptr<TypeModel> Model = makeModel(MC, WB.DS, *WB.U);
  trainModel(*Model, WB.DS.Train, TO);

  std::vector<const FileExample *> MapFiles;
  for (const FileExample &F : WB.DS.Train)
    MapFiles.push_back(&F);
  for (const FileExample &F : WB.DS.Valid)
    MapFiles.push_back(&F);

  // Cold start the training-process way: embed every map file and build
  // the forest from scratch.
  auto T0 = std::chrono::steady_clock::now();
  Predictor P = Predictor::knn(*Model, MapFiles);
  double BuildSec = secondsSince(T0);

  const std::string Path = "bench_artifact_io.typilus";
  const int Reps = 10;
  std::string Err;

  T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != Reps; ++I) {
    if (!P.save(Path, *WB.U, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  }
  double SaveSec = secondsSince(T0) / Reps;

  ArchiveWriter Probe(P.artifactVersion());
  P.writeArtifact(Probe, *WB.U);
  double Bytes = static_cast<double>(Probe.bytes().size());

  // Cold start the serving-process way: load the snapshot (no corpus, no
  // embedding, no forest rebuild).
  T0 = std::chrono::steady_clock::now();
  std::unique_ptr<Predictor> L;
  for (int I = 0; I != Reps; ++I) {
    L = Predictor::load(Path, &Err);
    if (!L) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  }
  double LoadSec = secondsSince(T0) / Reps;

  // Quantized τmap stores: artifact size, save/load, and end-to-end
  // prediction time per marker encoding. f16 halves and int8 quarters the
  // dominant chunk; the scan decodes inside the distance kernel, so the
  // quantized rows also show the smaller-memory-traffic effect.
  TextTable QT;
  QT.setHeader({"τmap store", "size (KiB)", "vs f32", "save (ms)", "load (ms)",
                "predict test split (ms)"});
  double F32Bytes = 0;
  for (MarkerStore S :
       {MarkerStore::F32, MarkerStore::F16, MarkerStore::Int8}) {
    std::unique_ptr<Predictor> Q = Predictor::load(Path, &Err);
    if (!Q) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    if (S != MarkerStore::F32 && !Q->setMarkerStore(S, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    const std::string QPath = "bench_artifact_io_q.typilus";
    // A loaded predictor's types are interned in its own universe, not the
    // workbench's.
    const TypeUniverse &QU = *Q->universe();
    T0 = std::chrono::steady_clock::now();
    for (int I = 0; I != Reps; ++I)
      if (!Q->save(QPath, QU, &Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
    double QSaveSec = secondsSince(T0) / Reps;
    ArchiveWriter QProbe(Q->artifactVersion());
    Q->writeArtifact(QProbe, QU);
    double QBytes = static_cast<double>(QProbe.bytes().size());
    if (S == MarkerStore::F32)
      F32Bytes = QBytes;
    T0 = std::chrono::steady_clock::now();
    std::unique_ptr<Predictor> QL;
    for (int I = 0; I != Reps; ++I) {
      QL = Predictor::load(QPath, &Err);
      if (!QL) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
    }
    double QLoadSec = secondsSince(T0) / Reps;
    T0 = std::chrono::steady_clock::now();
    auto Preds = QL->predictAll(WB.DS.Test);
    double QPredictSec = secondsSince(T0);
    std::remove(QPath.c_str());
    QT.addRow({markerStoreName(S), strformat("%.1f", QBytes / 1024.0),
               strformat("%.2fx", F32Bytes / QBytes),
               strformat("%.2f", QSaveSec * 1e3),
               strformat("%.2f", QLoadSec * 1e3),
               strformat("%.2f (%zu preds)", QPredictSec * 1e3, Preds.size())});
  }
  std::remove(Path.c_str());

  TextTable T;
  T.setHeader({"metric", "value"});
  T.addRow({"artifact size (KiB)", strformat("%.1f", Bytes / 1024.0)});
  T.addRow({"τmap markers", strformat("%zu", P.typeMap().size())});
  T.addRow({"save (ms)", strformat("%.2f", SaveSec * 1e3)});
  T.addRow({"save throughput (MiB/s)",
            strformat("%.1f", Bytes / (1 << 20) / SaveSec)});
  T.addRow({"load (ms)", strformat("%.2f", LoadSec * 1e3)});
  T.addRow({"load throughput (MiB/s)",
            strformat("%.1f", Bytes / (1 << 20) / LoadSec)});
  T.addRow({"cold build: embed+index (ms)", strformat("%.2f", BuildSec * 1e3)});
  T.addRow({"serve cold-start speedup",
            strformat("%.1fx", BuildSec / LoadSec)});
  std::printf("%s", T.renderAscii().c_str());
  std::printf("\n(load skips both the map-file embedding and the Annoy "
              "forest rebuild; predictions are bit-identical either way)\n");
  std::printf("\nQuantized τmap stores (format v2; f32 stays the v1 byte "
              "stream):\n%s",
              QT.renderAscii().c_str());
  return 0;
}
