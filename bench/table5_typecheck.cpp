//===- bench/table5_typecheck.cpp - Table 5: correctness modulo type checker --===//
//
// Regenerates Table 5: substitute Typilus's top prediction one symbol at a
// time into partially annotated programs and run the optional type
// checkers (strict = mypy-like, inferring = pytype-like). Reports, per
// annotation category (ε→τ, τ→τ′, τ→τ), the proportion of substitutions
// and the fraction that do NOT introduce a type error.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace typilus;

static void reportMode(const char *Mode,
                       const std::vector<CheckOutcome> &Outcomes) {
  size_t N[3] = {0, 0, 0}, Ok[3] = {0, 0, 0};
  for (const CheckOutcome &O : Outcomes) {
    size_t I = static_cast<size_t>(O.Kind);
    ++N[I];
    Ok[I] += !O.CausesError;
  }
  size_t Total = Outcomes.size();
  size_t TotalOk = Ok[0] + Ok[1] + Ok[2];
  TextTable T;
  T.setHeader({"Original -> Predicted", "Prop.", "Acc."});
  const char *Names[3] = {"eps -> tau", "tau -> tau'", "tau -> tau"};
  for (size_t I = 0; I != 3; ++I) {
    double Prop = Total == 0 ? 0
                             : 100.0 * static_cast<double>(N[I]) /
                                   static_cast<double>(Total);
    double Acc = N[I] == 0 ? 0
                           : 100.0 * static_cast<double>(Ok[I]) /
                                 static_cast<double>(N[I]);
    T.addRow({Names[I], strformat("%.0f%%", Prop),
              strformat("%.0f%%", Acc)});
  }
  double Overall = Total == 0 ? 0
                              : 100.0 * static_cast<double>(TotalOk) /
                                    static_cast<double>(Total);
  T.addRow({"Overall", "100%", strformat("%.0f%%", Overall)});
  std::printf("--- %s ---\n%s  (%zu substitutions assessed)\n\n", Mode,
              T.renderAscii().c_str(), Total);
}

int main() {
  bench::banner("Table 5: type-checking accuracy of Typilus's predictions",
                "Table 5 / Sec. 6.3");
  BenchScale S = BenchScale::fromEnv();
  Workbench WB = bench::makeBench(S);
  ModelConfig MC; // Typilus
  ModelRun Run = trainAndEvaluate(WB, MC, bench::makeTrainOptions(S));

  // ~90% of annotations stripped: most substitutions are ε→τ, as in the
  // paper where most symbols are unannotated even after pytype inference.
  auto Strict = runCheckerExperiment(WB, Run.Preds, /*InferLocals=*/false,
                                     /*StripProb=*/0.9, /*Seed=*/1);
  auto Inferring = runCheckerExperiment(WB, Run.Preds, /*InferLocals=*/true,
                                        /*StripProb=*/0.9, /*Seed=*/1);
  reportMode("strict checker (mypy-like)", Strict);
  reportMode("inferring checker (pytype-like)", Inferring);
  std::printf("Paper: mypy overall 89%% / pytype 83%%; ε→τ dominates (95%% / "
              "94%%); the inferring checker catches more errors.\n");
  return 0;
}
