//===- bench/fig4_pr_curves.cpp - Fig. 4: precision-recall curves -------------===//
//
// Regenerates Fig. 4: confidence-thresholded precision/recall for
// Graph2Class, Graph2Space and Typilus on all three criteria. Output is a
// CSV series (one row per threshold point) plus the paper's headline
// operating point (precision at ~70% recall).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace typilus;

int main() {
  bench::banner("Fig. 4: precision-recall curves", "Figure 4");
  BenchScale S = BenchScale::fromEnv();
  Workbench WB = bench::makeBench(S);
  TrainOptions TO = bench::makeTrainOptions(S);

  struct Entry {
    const char *Name;
    LossKind Loss;
  };
  const Entry Entries[] = {
      {"Graph2Class", LossKind::Class},
      {"Graph2Space", LossKind::Space},
      {"Typilus", LossKind::Typilus},
  };
  const std::pair<const char *, Criterion> Criteria[] = {
      {"exact", Criterion::Exact},
      {"uptoparam", Criterion::UpToParametric},
      {"neutral", Criterion::Neutral},
  };

  TextTable Csv;
  Csv.setHeader({"model", "criterion", "threshold", "recall", "precision"});
  for (const Entry &E : Entries) {
    ModelConfig MC;
    MC.Loss = E.Loss;
    ModelRun Run = trainAndEvaluate(WB, MC, TO);
    for (const auto &[CName, C] : Criteria) {
      auto Curve = prCurve(Run.Js, C, 20);
      for (const PrPoint &P : Curve)
        Csv.addRow({E.Name, CName, strformat("%.4f", P.Threshold),
                    strformat("%.3f", P.Recall),
                    strformat("%.3f", P.Precision)});
      // Headline: precision nearest to 70% recall.
      const PrPoint *Best = nullptr;
      for (const PrPoint &P : Curve)
        if (!Best || std::abs(P.Recall - 0.7) < std::abs(Best->Recall - 0.7))
          Best = &P;
      if (Best)
        std::printf("%-12s %-10s precision at ~70%% recall: %.1f%% "
                    "(recall %.0f%%)\n",
                    E.Name, CName, 100 * Best->Precision, 100 * Best->Recall);
    }
  }
  std::printf("\nCSV series (plot recall vs precision per model/criterion):\n%s",
              Csv.renderCsv().c_str());
  std::printf("\nPaper: Typilus reaches ~95%% type-neutral precision at 70%% "
              "recall; the baselines sit well below.\n");
  return 0;
}
