//===- bench/table4_ablations.cpp - Table 4: edge & representation ablations --===//
//
// Regenerates Table 4: retrain Typilus with edge families removed from the
// graph (Only Names / No Syntactic / No NEXT_TOKEN / No CHILD /
// No NEXT_*USE) and with different initial node representations (whole
// tokens / characters / subtokens).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace typilus;

int main() {
  bench::banner("Table 4: ablations of Typilus", "Table 4");
  BenchScale S = BenchScale::fromEnv();
  TrainOptions TO = bench::makeTrainOptions(S);

  struct Row {
    const char *Name;
    GraphBuildOptions GO;
    EncoderKind Enc;
    NodeRepKind Rep;
  };
  const Row Rows[] = {
      {"Only Names (No GNN)", GraphBuildOptions::full(),
       EncoderKind::NamesOnly, NodeRepKind::Subtoken},
      {"No Syntactic Edges", GraphBuildOptions::noSyntactic(),
       EncoderKind::Graph, NodeRepKind::Subtoken},
      {"No NEXT_TOKEN", GraphBuildOptions::noNextToken(), EncoderKind::Graph,
       NodeRepKind::Subtoken},
      {"No CHILD", GraphBuildOptions::noChild(), EncoderKind::Graph,
       NodeRepKind::Subtoken},
      {"No NEXT_*USE", GraphBuildOptions::noNextUse(), EncoderKind::Graph,
       NodeRepKind::Subtoken},
      {"Full Model - Tokens", GraphBuildOptions::full(), EncoderKind::Graph,
       NodeRepKind::WholeToken},
      {"Full Model - Character", GraphBuildOptions::full(),
       EncoderKind::Graph, NodeRepKind::Character},
      {"Full Model - Subtokens", GraphBuildOptions::full(),
       EncoderKind::Graph, NodeRepKind::Subtoken},
  };

  TextTable T;
  T.setHeader({"Ablation", "%Exact Match", "%Type Neutral"});
  for (const Row &R : Rows) {
    // Each ablation rebuilds the dataset with its graph options (edges are
    // removed at graph-construction time, as in the paper).
    Workbench WB = bench::makeBench(S, /*Seed=*/20200613, R.GO);
    ModelConfig MC;
    MC.Encoder = R.Enc;
    MC.NodeRep = R.Rep;
    ModelRun Run = trainAndEvaluate(WB, MC, TO);
    T.addNumericRow(R.Name, {Run.Summary.ExactAll, Run.Summary.Neutral});
    std::printf("trained %-24s (%.0fs) exact=%.1f\n", R.Name,
                Run.TrainSeconds, Run.Summary.ExactAll);
  }
  std::printf("\n%s", T.renderAscii().c_str());
  std::printf("\nPaper: Only Names 38.8, No Syntactic 53.7, No NEXT_TOKEN "
              "54.7, No CHILD 48.4, No NEXT_*USE 54.7,\nTokens 53.7, "
              "Character 53.4, Subtokens 54.6 — names alone lose most; "
              "NEXT_*USE is subsumed by OCCURRENCE_OF.\n");
  return 0;
}
