//===- bench/shard_stream.cpp - Sharded streaming vs in-memory corpus ---------===//
//
// The corpus-sharding claim, measured: pushing the same corpus through
// the in-memory `Dataset` (every FileExample resident at once) and
// through a `ShardedDataset` (decoded residency bounded by the shard
// LRU) must cost the same stream — identical files, identical targets —
// while peak RSS is bounded by shard residency, not corpus size.
//
// Each variant runs in its own forked child so `getrusage`'s ru_maxrss
// high-water mark is per-variant, not contaminated by whichever variant
// ran first. The parent collects metrics over a pipe and the child's
// rusage from wait4().
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "corpus/ShardedDataset.h"

#include <cinttypes>
#include <cstring>
#include <ctime>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace typilus;

namespace {

double now() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) + 1e-9 * static_cast<double>(Ts.tv_nsec);
}

/// What a child reports back over its pipe.
struct Metrics {
  uint64_t Files = 0;
  uint64_t Targets = 0;
  uint64_t NodeSum = 0; ///< Checksum-ish: proves both variants saw the same data.
  double BuildSec = 0;
  double StreamSec = 0;
  double EpochSec = 0;
  uint64_t Decodes = 0;
  uint64_t StallUs = 0;  ///< Consumer time spent obtaining non-resident shards.
  uint64_t PfWaitUs = 0; ///< Portion of StallUs spent waiting on the prefetcher.
  uint64_t PfHits = 0;
};

struct ChildResult {
  Metrics M;
  long PeakRssKb = 0;
};

/// Runs \p Fn in a forked child; returns its metrics + peak RSS.
template <typename Fn> ChildResult inChild(Fn &&Body) {
  int Pipe[2];
  if (pipe(Pipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (Pid == 0) {
    close(Pipe[0]);
    Metrics M = Body();
    ssize_t W = write(Pipe[1], &M, sizeof(M));
    _exit(W == static_cast<ssize_t>(sizeof(M)) ? 0 : 1);
  }
  close(Pipe[1]);
  ChildResult R;
  ssize_t Got = read(Pipe[0], &R.M, sizeof(R.M));
  close(Pipe[0]);
  int Status = 0;
  rusage Ru;
  std::memset(&Ru, 0, sizeof(Ru));
  if (wait4(Pid, &Status, 0, &Ru) != Pid || Status != 0 ||
      Got != static_cast<ssize_t>(sizeof(R.M))) {
    std::fprintf(stderr, "error: bench child failed (status %d)\n", Status);
    std::exit(1);
  }
  R.PeakRssKb = Ru.ru_maxrss; // KiB on Linux
  return R;
}

/// One full pass over a source, touching every example (summing node
/// counts so the stream cannot be optimized away).
void streamPass(ExampleSource &Src, Metrics &M) {
  ExamplePin Pin;
  for (size_t I = 0, N = Src.size(); I != N; ++I) {
    const FileExample &Ex = Src.get(I, Pin);
    ++M.Files;
    M.Targets += Ex.Targets.size();
    M.NodeSum += Ex.Graph.numNodes();
  }
}

} // namespace

int main() {
  bench::banner("Sharded streaming corpus: peak RSS & stream throughput",
                "the Sec. 6 corpus scale problem (600 projects / 252k "
                "annotations don't fit training RAM)");
  BenchScale S = BenchScale::fromEnv();
  CorpusConfig CC;
  CC.NumFiles = S.NumFiles;
  DatasetConfig DC;
  constexpr int FilesPerShard = 8;
  constexpr int MaxResident = 2;
  std::string Dir =
      "/tmp/typilus_shard_stream." + std::to_string(::getpid());

  std::printf("corpus: %d files; shards of %d files, LRU of %d decoded "
              "shards\n\n",
              CC.NumFiles, FilesPerShard, MaxResident);

  // Variant A: the historical path — every example resident at once.
  ChildResult InMem = inChild([&] {
    Metrics M;
    CorpusGenerator Gen(CC);
    std::vector<CorpusFile> Files = Gen.generate();
    TypeUniverse U;
    double T0 = now();
    Dataset DS = buildDataset(Files, Gen.udts(), U, nullptr, DC);
    M.BuildSec = now() - T0;
    T0 = now();
    for (const std::vector<FileExample> *Split :
         {&DS.Train, &DS.Valid, &DS.Test}) {
      VectorExampleSource Src(*Split);
      streamPass(Src, M);
    }
    M.StreamSec = now() - T0;
    return M;
  });

  // Variant B: build shards serially (one chunk resident at a time; the
  // parallel-build baseline), then stream them back through the LRU with
  // the prefetcher off — the pure demand-decode cost.
  ChildResult Sharded = inChild([&] {
    Metrics M;
    CorpusGenerator Gen(CC);
    std::vector<CorpusFile> Files = Gen.generate();
    TypeUniverse U;
    ShardBuildOptions SO;
    SO.Dir = Dir;
    SO.FilesPerShard = FilesPerShard;
    SO.NumThreads = 1;
    std::string Err;
    double T0 = now();
    if (!buildShards(Files, Gen.udts(), U, nullptr, DC, SO, &Err)) {
      std::fprintf(stderr, "buildShards: %s\n", Err.c_str());
      std::exit(1);
    }
    M.BuildSec = now() - T0;
    TypeUniverse U2;
    ShardedDatasetOptions RO;
    RO.MaxResidentShards = MaxResident;
    RO.Prefetch = false;
    std::unique_ptr<ShardedDataset> SD = ShardedDataset::open(Dir, U2, RO, &Err);
    if (!SD) {
      std::fprintf(stderr, "open: %s\n", Err.c_str());
      std::exit(1);
    }
    T0 = now();
    for (SplitKind SK :
         {SplitKind::Train, SplitKind::Valid, SplitKind::Test})
      streamPass(SD->split(SK), M);
    M.StreamSec = now() - T0;
    M.Decodes = SD->decodeCount();
    M.StallUs = SD->decodeStallMicros();
    return M;
  });

  // Variant C: the same build through 4 chunk-builder threads (the
  // shards are byte-identical — ShardTest pins that; here we time it).
  std::string ParDir = Dir + ".par";
  ChildResult ParBuild = inChild([&] {
    Metrics M;
    CorpusGenerator Gen(CC);
    std::vector<CorpusFile> Files = Gen.generate();
    TypeUniverse U;
    ShardBuildOptions SO;
    SO.Dir = ParDir;
    SO.FilesPerShard = FilesPerShard;
    SO.NumThreads = 4;
    std::string Err;
    double T0 = now();
    if (!buildShards(Files, Gen.udts(), U, nullptr, DC, SO, &Err)) {
      std::fprintf(stderr, "buildShards(par): %s\n", Err.c_str());
      std::exit(1);
    }
    M.BuildSec = now() - T0;
    return M;
  });

  // Variants D/E: one training epoch over the sharded train split with
  // the prefetcher off vs on. The epoch is where overlap pays: the
  // background decode of shard k+1 hides under shard k's batch compute,
  // so the consumer's decode stall (µs spent obtaining non-resident
  // shards) must shrink even where a 1-core host mutes wall-clock gains.
  auto epochPass = [&](bool Prefetch) {
    Metrics M;
    TypeUniverse U;
    std::string Err;
    ShardedDatasetOptions RO;
    RO.MaxResidentShards = MaxResident;
    RO.Prefetch = Prefetch;
    std::unique_ptr<ShardedDataset> SD = ShardedDataset::open(Dir, U, RO, &Err);
    if (!SD) {
      std::fprintf(stderr, "open: %s\n", Err.c_str());
      std::exit(1);
    }
    ExampleSource &Train = SD->split(SplitKind::Train);
    ModelConfig MC;
    MC.Encoder = EncoderKind::Graph;
    MC.Loss = LossKind::Typilus;
    MC.HiddenDim = 16;
    MC.TimeSteps = 2;
    std::unique_ptr<TypeModel> Model = makeModel(MC, Train, U);
    TrainOptions TO;
    TO.Epochs = 1;
    TO.BatchFiles = 8;
    // The intended streaming mode: each shard decoded once per epoch, so
    // the prefetcher's one-ahead plan covers every transition.
    TO.ShardAwareShuffle = true;
    double T0 = now();
    trainModel(*Model, Train, TO);
    M.EpochSec = now() - T0;
    M.Decodes = SD->decodeCount();
    M.StallUs = SD->decodeStallMicros();
    M.PfWaitUs = SD->prefetchWaitMicros();
    M.PfHits = SD->prefetchHits();
    return M;
  };
  ChildResult EpochOff = inChild([&] { return epochPass(false); });
  ChildResult EpochOn = inChild([&] { return epochPass(true); });

  // Clean both shard sets up (the bench children wrote them).
  for (const std::string &D : {Dir, ParDir}) {
    for (int I = 0; I != 1024; ++I) {
      char Name[32];
      std::snprintf(Name, sizeof(Name), "shard-%05d.typs", I);
      if (std::remove((D + "/" + Name).c_str()) != 0)
        break;
    }
    std::remove((D + "/" + kShardManifestName).c_str());
    std::remove(D.c_str());
  }

  if (InMem.M.Files != Sharded.M.Files ||
      InMem.M.Targets != Sharded.M.Targets ||
      InMem.M.NodeSum != Sharded.M.NodeSum) {
    std::fprintf(stderr,
                 "error: variants disagree on the corpus "
                 "(files %" PRIu64 "/%" PRIu64 ", targets %" PRIu64
                 "/%" PRIu64 ")\n",
                 InMem.M.Files, Sharded.M.Files, InMem.M.Targets,
                 Sharded.M.Targets);
    return 1;
  }

  auto Report = [](const char *Name, const ChildResult &R) {
    std::printf("%-9s built in %.2fs, streamed %" PRIu64 " files / %" PRIu64
                " targets in %.3fs (%.0f files/s) — peak RSS %.1f MB\n",
                Name, R.M.BuildSec, R.M.Files, R.M.Targets, R.M.StreamSec,
                R.M.StreamSec > 0
                    ? static_cast<double>(R.M.Files) / R.M.StreamSec
                    : 0.0,
                static_cast<double>(R.PeakRssKb) / 1024.0);
  };
  Report("in-memory", InMem);
  Report("sharded", Sharded);
  std::printf("sharded decodes: %" PRIu64 " (sequential pass = one per "
              "shard)\n\n",
              Sharded.M.Decodes);

  double Speedup = ParBuild.M.BuildSec > 0
                       ? Sharded.M.BuildSec / ParBuild.M.BuildSec
                       : 0.0;
  std::printf("shard build: %.2fs serial, %.2fs with 4 chunk threads "
              "(%.2fx)\n",
              Sharded.M.BuildSec, ParBuild.M.BuildSec, Speedup);
  double StallCut =
      EpochOff.M.StallUs > 0
          ? 1.0 - static_cast<double>(EpochOn.M.StallUs) /
                      static_cast<double>(EpochOff.M.StallUs)
          : 0.0;
  std::printf("train epoch: %.2fs prefetch-off (stall %" PRIu64
              " us over %" PRIu64 " decodes), %.2fs prefetch-on (stall "
              "%" PRIu64 " us, wait %" PRIu64 " us, %" PRIu64
              " hits) — %.0f%% of the decode stall removed\n\n",
              EpochOff.M.EpochSec, EpochOff.M.StallUs, EpochOff.M.Decodes,
              EpochOn.M.EpochSec, EpochOn.M.StallUs, EpochOn.M.PfWaitUs,
              EpochOn.M.PfHits, 100.0 * StallCut);

  // The machine-readable lines BENCH_shard_stream.json records.
  std::printf("peak_rss_inmem_kb: %ld\n", InMem.PeakRssKb);
  std::printf("peak_rss_sharded_kb: %ld\n", Sharded.PeakRssKb);
  std::printf("rss_ratio_inmem_vs_sharded: %.2fx\n",
              Sharded.PeakRssKb > 0
                  ? static_cast<double>(InMem.PeakRssKb) /
                        static_cast<double>(Sharded.PeakRssKb)
                  : 0.0);
  std::printf("inmem_stream_files_per_sec: %.0f\n",
              InMem.M.StreamSec > 0
                  ? static_cast<double>(InMem.M.Files) / InMem.M.StreamSec
                  : 0.0);
  std::printf("sharded_stream_files_per_sec: %.0f\n",
              Sharded.M.StreamSec > 0
                  ? static_cast<double>(Sharded.M.Files) / Sharded.M.StreamSec
                  : 0.0);
  std::printf("shard_build_serial_sec: %.3f\n", Sharded.M.BuildSec);
  std::printf("shard_build_par4_sec: %.3f\n", ParBuild.M.BuildSec);
  std::printf("shard_build_speedup_par4: %.2fx\n", Speedup);
  std::printf("epoch_sec_prefetch_off: %.3f\n", EpochOff.M.EpochSec);
  std::printf("epoch_sec_prefetch_on: %.3f\n", EpochOn.M.EpochSec);
  std::printf("decode_stall_us_prefetch_off: %" PRIu64 "\n",
              EpochOff.M.StallUs);
  std::printf("decode_stall_us_prefetch_on: %" PRIu64 "\n", EpochOn.M.StallUs);
  std::printf("prefetch_wait_us: %" PRIu64 "\n", EpochOn.M.PfWaitUs);
  std::printf("prefetch_hits: %" PRIu64 "\n", EpochOn.M.PfHits);
  std::printf("prefetch_stall_reduction: %.2f\n", StallCut);
  return 0;
}
