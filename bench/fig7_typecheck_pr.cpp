//===- bench/fig7_typecheck_pr.cpp - Fig. 7: PR of checker correctness --------===//
//
// Regenerates Fig. 7: precision/recall of Typilus's predictions where
// "correct" means "does not introduce a type error", against both checker
// modes, sweeping the confidence threshold.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>

using namespace typilus;

static void curveFor(const char *Mode,
                     const std::vector<CheckOutcome> &Outcomes,
                     TextTable &Csv) {
  std::vector<double> Confs;
  for (const CheckOutcome &O : Outcomes)
    Confs.push_back(O.Confidence);
  std::sort(Confs.begin(), Confs.end());
  for (int I = 0; I != 20; ++I) {
    double Thr = Confs.empty()
                     ? 0
                     : Confs[std::min(Confs.size() - 1,
                                      Confs.size() * static_cast<size_t>(I) /
                                          20)];
    size_t Kept = 0, Ok = 0;
    for (const CheckOutcome &O : Outcomes) {
      if (O.Confidence < Thr)
        continue;
      ++Kept;
      Ok += !O.CausesError;
    }
    double Recall = Outcomes.empty() ? 0
                                     : static_cast<double>(Kept) /
                                           static_cast<double>(Outcomes.size());
    double Precision =
        Kept == 0 ? 1.0 : static_cast<double>(Ok) / static_cast<double>(Kept);
    Csv.addRow({Mode, strformat("%.4f", Thr), strformat("%.3f", Recall),
                strformat("%.3f", Precision)});
  }
}

int main() {
  bench::banner("Fig. 7: precision-recall vs the optional type checkers",
                "Figure 7");
  BenchScale S = BenchScale::fromEnv();
  Workbench WB = bench::makeBench(S);
  ModelConfig MC; // Typilus
  ModelRun Run = trainAndEvaluate(WB, MC, bench::makeTrainOptions(S));

  auto Strict = runCheckerExperiment(WB, Run.Preds, false, 0.9, 1);
  auto Inferring = runCheckerExperiment(WB, Run.Preds, true, 0.9, 1);

  TextTable Csv;
  Csv.setHeader({"checker", "threshold", "recall", "precision"});
  curveFor("strict(mypy-like)", Strict, Csv);
  curveFor("inferring(pytype-like)", Inferring, Csv);
  std::printf("%s", Csv.renderCsv().c_str());

  auto Overall = [](const std::vector<CheckOutcome> &O) {
    size_t Ok = 0;
    for (const CheckOutcome &C : O)
      Ok += !C.CausesError;
    return O.empty() ? 0.0
                     : 100.0 * static_cast<double>(Ok) /
                           static_cast<double>(O.size());
  };
  std::printf("\noverall pass-rate: strict %.1f%%, inferring %.1f%%\n",
              Overall(Strict), Overall(Inferring));
  std::printf("Paper: ~90%% correct w.r.t. mypy at 80%% recall; precision "
              "rises as the confidence threshold increases.\n");
  return 0;
}
