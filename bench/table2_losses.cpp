//===- bench/table2_losses.cpp - Table 2: the nine model variants -------------===//
//
// Regenerates Table 2: {Seq, Path, Graph} x {Class (Eq. 1), Space (Eq. 3),
// Typilus (Eq. 4)} evaluated on exact match, match up to parametric type
// (each split All/Common/Rare) and type neutrality. Expected shapes:
// Space/Typilus dominate Class on rare types; Graph >= Seq >= Path;
// Typilus best overall.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace typilus;

int main() {
  bench::banner("Table 2: quantitative evaluation of the nine variants",
                "Table 2");
  BenchScale S = BenchScale::fromEnv();
  Workbench WB = bench::makeBench(S);
  TrainOptions TO = bench::makeTrainOptions(S);

  struct Row {
    const char *Name;
    EncoderKind Enc;
    LossKind Loss;
  };
  const Row Rows[] = {
      {"Seq2Class", EncoderKind::Seq, LossKind::Class},
      {"Seq2Space", EncoderKind::Seq, LossKind::Space},
      {"Seq-Typilus", EncoderKind::Seq, LossKind::Typilus},
      {"Path2Class", EncoderKind::Path, LossKind::Class},
      {"Path2Space", EncoderKind::Path, LossKind::Space},
      {"Path-Typilus", EncoderKind::Path, LossKind::Typilus},
      {"Graph2Class", EncoderKind::Graph, LossKind::Class},
      {"Graph2Space", EncoderKind::Graph, LossKind::Space},
      {"Typilus", EncoderKind::Graph, LossKind::Typilus},
  };

  TextTable T;
  T.setHeader({"Model", "%Exact All", "Common", "Rare", "%UpToParam All",
               "Common", "Rare", "%Neutral"});
  for (const Row &R : Rows) {
    ModelConfig MC;
    MC.Encoder = R.Enc;
    MC.Loss = R.Loss;
    ModelRun Run = trainAndEvaluate(WB, MC, TO);
    const EvalSummary &E = Run.Summary;
    T.addNumericRow(R.Name, {E.ExactAll, E.ExactCommon, E.ExactRare, E.UpAll,
                             E.UpCommon, E.UpRare, E.Neutral});
    std::printf("trained %-13s (%.0fs)  exact=%.1f rare=%.1f\n", R.Name,
                Run.TrainSeconds, E.ExactAll, E.ExactRare);
  }
  std::printf("\n%s", T.renderAscii().c_str());
  std::printf("\nPaper's Table 2 (for shape comparison): Typilus 54.6 exact "
              "(77.2 common / 22.5 rare), Graph2Class 46.1 (74.5 / 5.9),\n"
              "Graph2Space 50.5 (69.7 / 23.1); Graph > Seq > Path; "
              "meta-learning dominates on rare types.\n");
  return 0;
}
