//===- bench/fig6_knn_grid.cpp - Fig. 6: sensitivity to k and p ----------------===//
//
// Regenerates Fig. 6: the absolute difference in match-up-to-parametric
// w.r.t. the grid median, for the kNN size k and the distance temperature
// p of Eq. 5, on a single trained TypeSpace. Embeddings are computed once;
// only the lookup parameters vary.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>

using namespace typilus;

int main() {
  bench::banner("Fig. 6: kNN hyper-parameter grid (Eq. 5)", "Figure 6");
  BenchScale S = BenchScale::fromEnv();
  Workbench WB = bench::makeBench(S);
  ModelConfig MC; // Typilus
  auto Model = makeModel(MC, WB.DS, *WB.U);
  TrainOptions TO = bench::makeTrainOptions(S);
  trainModel(*Model, WB.DS.Train, TO);

  // τmap over train+valid.
  TypeMap Map(MC.HiddenDim);
  for (const auto *Split : {&WB.DS.Train, &WB.DS.Valid})
    for (const FileExample &F : *Split) {
      std::vector<const Target *> Targets;
      nn::Value Emb = Model->embed({&F}, &Targets);
      if (!Emb.defined())
        continue;
      for (size_t I = 0; I != Targets.size(); ++I)
        Map.add(Emb.val().data() + static_cast<int64_t>(I) * Emb.val().cols(),
                Targets[I]->Type);
    }
  ExactIndex Index(Map);

  // Test embeddings, once.
  std::vector<std::vector<float>> Queries;
  std::vector<const Target *> QueryTargets;
  for (const FileExample &F : WB.DS.Test) {
    std::vector<const Target *> Targets;
    nn::Value Emb = Model->embed({&F}, &Targets);
    if (!Emb.defined())
      continue;
    for (size_t I = 0; I != Targets.size(); ++I) {
      const float *Row =
          Emb.val().data() + static_cast<int64_t>(I) * Emb.val().cols();
      Queries.emplace_back(Row, Row + MC.HiddenDim);
      QueryTargets.push_back(Targets[I]);
    }
  }

  const std::vector<int> Ks = {1, 2, 3, 5, 7, 9, 11, 13, 16, 19, 25};
  const std::vector<double> Ps = {0.01, 0.05, 0.1, 0.25, 0.5, 0.75,
                                  1.0,  1.5,  2.0, 3.0,  5.0};
  // Up-to-parametric score per (k, p).
  std::vector<std::vector<double>> Score(Ks.size(),
                                         std::vector<double>(Ps.size(), 0));
  for (size_t KI = 0; KI != Ks.size(); ++KI) {
    // Neighbours at max-k once per query, reused for smaller scoring.
    for (size_t Q = 0; Q != Queries.size(); ++Q) {
      NeighborList Neigh = Index.query(Queries[Q].data(), Ks[KI]);
      for (size_t PI = 0; PI != Ps.size(); ++PI) {
        auto Scored = scoreNeighbors(Map, Neigh, Ps[PI]);
        if (Scored.empty())
          continue;
        TypeRef Pred = Scored.front().Type;
        TypeRef Truth = QueryTargets[Q]->Type;
        Score[KI][PI] += WB.U->erase(Pred) == WB.U->erase(Truth) ? 1 : 0;
      }
    }
    for (size_t PI = 0; PI != Ps.size(); ++PI)
      Score[KI][PI] = 100.0 * Score[KI][PI] /
                      static_cast<double>(std::max<size_t>(Queries.size(), 1));
  }

  std::vector<double> AllVals;
  for (const auto &RowVals : Score)
    AllVals.insert(AllVals.end(), RowVals.begin(), RowVals.end());
  std::sort(AllVals.begin(), AllVals.end());
  double Median = AllVals[AllVals.size() / 2];

  TextTable T;
  std::vector<std::string> Header = {"k \\ p"};
  for (double P : Ps)
    Header.push_back(strformat("%.2f", P));
  T.setHeader(Header);
  for (size_t KI = 0; KI != Ks.size(); ++KI) {
    std::vector<std::string> RowCells = {strformat("%d", Ks[KI])};
    for (size_t PI = 0; PI != Ps.size(); ++PI)
      RowCells.push_back(strformat("%+.1f", Score[KI][PI] - Median));
    T.addRow(RowCells);
  }
  std::printf("Δ match-up-to-parametric vs grid median (%.1f%%), over %zu "
              "test symbols:\n%s",
              Median, Queries.size(), T.renderAscii().c_str());
  std::printf("\nPaper: small k hurts (top row strongly negative); larger k "
              "with moderate-to-large p gives the best cells.\n");

  // Quantized τmap stores at a fixed good cell (k=10, p=1.0): what does
  // shrinking the markers to f16/int8 cost in accuracy? The distance scan
  // decodes inside the kernel, so this measures the real serving path.
  const int QK = 10;
  const double QP = 1.0;
  TextTable QT;
  QT.setHeader({"τmap store", "match-up-to-parametric (%)", "Δ vs f32 (pp)",
                "marker bytes"});
  double F32Score = 0;
  for (MarkerStore S :
       {MarkerStore::F32, MarkerStore::F16, MarkerStore::Int8}) {
    TypeMap QMap = Map;
    if (S != MarkerStore::F32)
      QMap.quantize(S);
    ExactIndex QIndex(QMap);
    double Hits = 0;
    for (size_t Q = 0; Q != Queries.size(); ++Q) {
      auto Scored =
          scoreNeighbors(QMap, QIndex.query(Queries[Q].data(), QK), QP);
      if (Scored.empty())
        continue;
      Hits += WB.U->erase(Scored.front().Type) ==
                      WB.U->erase(QueryTargets[Q]->Type)
                  ? 1
                  : 0;
    }
    double Pct =
        100.0 * Hits / static_cast<double>(std::max<size_t>(Queries.size(), 1));
    if (S == MarkerStore::F32)
      F32Score = Pct;
    QT.addRow({markerStoreName(S), strformat("%.2f", Pct),
               strformat("%+.2f", Pct - F32Score),
               strformat("%zu", QMap.storageBytes())});
  }
  std::printf("\nQuantized τmap accuracy at k=%d, p=%.1f (paper-faithful "
              "lookup, smaller markers):\n%s",
              QK, QP, QT.renderAscii().c_str());
  return 0;
}
