//===- bench/fig5_buckets.cpp - Fig. 5: accuracy by annotation count ----------===//
//
// Regenerates Fig. 5: Typilus's exact match and match-up-to-parametric,
// bucketed by how often the ground-truth type is annotated in training
// (the paper buckets 2..10000 on its larger corpus; bounds scale here).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace typilus;

int main() {
  bench::banner("Fig. 5: performance bucketed by type annotation count",
                "Figure 5");
  BenchScale S = BenchScale::fromEnv();
  Workbench WB = bench::makeBench(S);
  ModelConfig MC; // Typilus
  ModelRun Run = trainAndEvaluate(WB, MC, bench::makeTrainOptions(S));

  const std::vector<int> Bounds = {2, 5, 10, 20, 50, 100, 1000000};
  auto Buckets = bucketByAnnotationCount(Run.Js, Bounds);

  TextTable T;
  T.setHeader({"annotation count <=", "n", "% exact match",
               "% match up to parametric"});
  for (const Bucket &B : Buckets)
    T.addRow({B.MaxCount >= 1000000 ? std::string("inf")
                                    : strformat("%d", B.MaxCount),
              strformat("%zu", B.Num), strformat("%.1f", B.Exact),
              strformat("%.1f", B.UpToParametric)});
  std::printf("%s", T.renderAscii().c_str());
  std::printf("\nPaper: accuracy rises monotonically with annotation count; "
              "rare buckets stay well above zero thanks to the kNN type "
              "map.\n");
  return 0;
}
