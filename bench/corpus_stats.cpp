//===- bench/corpus_stats.cpp - Sec. 6 "Data" statistics + Table 1 ------------===//
//
// Regenerates the corpus statistics the paper reports in Sec. 6 (Zipfian
// type distribution, top-10 share, rare-annotation share, dedup effect)
// and the per-label edge inventory of Table 1.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "corpus/Dedup.h"
#include "pyfront/Parser.h"

#include <algorithm>

using namespace typilus;

int main() {
  bench::banner("Corpus statistics & graph edge inventory",
                "Sec. 6 'Data' and Table 1");
  BenchScale S = BenchScale::fromEnv();
  CorpusConfig CC;
  CC.NumFiles = S.NumFiles;
  CorpusGenerator Gen(CC);
  std::vector<CorpusFile> Files = Gen.generate();
  std::vector<size_t> Dupes = findNearDuplicates(Files);

  TypeUniverse U;
  TypeHierarchy H(U);
  DatasetConfig DC;
  Dataset DS = buildDataset(Files, Gen.udts(), U, &H, DC);

  size_t Total = 0;
  std::vector<std::pair<int, TypeRef>> ByCount;
  for (const auto &[T, N] : DS.TrainTypeCounts) {
    ByCount.emplace_back(N, T);
    Total += static_cast<size_t>(N);
  }
  std::sort(ByCount.rbegin(), ByCount.rend());
  size_t Top10 = 0;
  for (size_t I = 0; I < 10 && I < ByCount.size(); ++I)
    Top10 += static_cast<size_t>(ByCount[I].first);
  size_t RareMass = 0;
  for (const auto &[N, T] : ByCount)
    if (N < DS.CommonThreshold)
      RareMass += static_cast<size_t>(N);

  std::printf("files generated:            %zu\n", Files.size());
  std::printf("near-duplicates removed:    %zu (paper: >133k of 600 repos)\n",
              Dupes.size());
  std::printf("train/valid/test files:     %zu / %zu / %zu (70/10/20)\n",
              DS.Train.size(), DS.Valid.size(), DS.Test.size());
  std::printf("annotated symbols (train):  %zu\n", Total);
  std::printf("distinct types (train):     %zu\n", ByCount.size());
  std::printf("top-10 types share:         %.1f%%  (paper: ~50%%)\n",
              100.0 * static_cast<double>(Top10) / static_cast<double>(Total));
  std::printf("rare-annotation share:      %.1f%%  (paper: 32%%; rare = <%d "
              "train annotations)\n\n",
              100.0 * static_cast<double>(RareMass) /
                  static_cast<double>(Total),
              DS.CommonThreshold);

  TextTable Tt;
  Tt.setHeader({"rank", "type", "train annotations"});
  for (size_t I = 0; I < 10 && I < ByCount.size(); ++I)
    Tt.addRow({strformat("%zu", I + 1), ByCount[I].second->str(),
               strformat("%d", ByCount[I].first)});
  std::printf("%s\n", Tt.renderAscii().c_str());

  // Table 1: edge counts per label over the training graphs.
  std::array<size_t, NumEdgeLabels> Counts{};
  size_t Nodes = 0;
  for (const FileExample &F : DS.Train) {
    auto C = F.Graph.edgeCounts();
    for (size_t I = 0; I != NumEdgeLabels; ++I)
      Counts[I] += C[I];
    Nodes += F.Graph.numNodes();
  }
  TextTable Et;
  Et.setHeader({"edge label (Table 1)", "count", "per node"});
  for (size_t I = 0; I != NumEdgeLabels; ++I)
    Et.addRow({edgeLabelName(static_cast<EdgeLabel>(I)),
               strformat("%zu", Counts[I]),
               strformat("%.2f", static_cast<double>(Counts[I]) /
                                     static_cast<double>(Nodes))});
  std::printf("%s\n", Et.renderAscii().c_str());

  // Crawl-scale view (the Sec. 6 pipeline at growing corpus sizes): how
  // the distinct-type vocabulary grows with the crawl — the long tail
  // keeps supplying new types, the paper's motivation for the open
  // type space — plus what dedup removes and what the parser gate
  // (`shard --from-dir`'s accept filter) rejects.
  std::array<size_t, 4> Vocab{};
  for (int Q = 1; Q <= 4; ++Q) {
    CorpusConfig QC = CC;
    QC.NumFiles = std::max(1, CC.NumFiles * Q / 4);
    CorpusGenerator QGen(QC);
    std::vector<CorpusFile> QFiles = QGen.generate();
    TypeUniverse QU;
    DatasetConfig QDC;
    Dataset QDS = buildDataset(QFiles, QGen.udts(), QU, nullptr, QDC);
    Vocab[static_cast<size_t>(Q) - 1] = QDS.TrainTypeCounts.size();
  }
  std::printf("type-vocab growth:          %zu -> %zu -> %zu -> %zu distinct "
              "train types at 25/50/75/100%% of the crawl\n",
              Vocab[0], Vocab[1], Vocab[2], Vocab[3]);

  // A real crawl contains Python outside the supported subset; seed one
  // unsupported file per ~20 clean ones and push the whole crawl through
  // the same parser gate ingestion uses.
  std::vector<CorpusFile> Crawl = Files;
  size_t Seeded = std::max<size_t>(1, Files.size() / 20);
  for (size_t I = 0; I != Seeded; ++I) {
    CorpusFile Bad;
    Bad.Path = strformat("crawl/unsupported_%zu.py", I);
    Bad.Source = I % 2 == 0 ? "try:\n    x = 1\nexcept OSError:\n    x = 2\n"
                            : "@decorated\ndef f(q: str) -> int:\n"
                              "    return len(q)\n";
    Crawl.push_back(std::move(Bad));
  }
  size_t Rejected = 0;
  for (const CorpusFile &F : Crawl)
    if (parseFile(F.Path, F.Source).hasErrors())
      ++Rejected;
  double DedupRate =
      100.0 * static_cast<double>(Dupes.size()) /
      static_cast<double>(Files.size());
  double RejectRate = 100.0 * static_cast<double>(Rejected) /
                      static_cast<double>(Crawl.size());
  std::printf("dedup rate:                 %.1f%% of crawled files are "
              "near-duplicates (paper: ~18%%)\n",
              DedupRate);
  std::printf("parse-reject rate:          %.1f%% of a reject-seeded crawl "
              "(%zu of %zu files) — skipped and reported, never fatal\n\n",
              RejectRate, Rejected, Crawl.size());

  // The machine-readable lines BENCH_corpus_stats.json records.
  std::printf("type_vocab_25pct: %zu\n", Vocab[0]);
  std::printf("type_vocab_50pct: %zu\n", Vocab[1]);
  std::printf("type_vocab_75pct: %zu\n", Vocab[2]);
  std::printf("type_vocab_100pct: %zu\n", Vocab[3]);
  std::printf("dedup_rate_pct: %.1f\n", DedupRate);
  std::printf("parse_reject_rate_pct: %.1f\n", RejectRate);
  return 0;
}
