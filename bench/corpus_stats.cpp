//===- bench/corpus_stats.cpp - Sec. 6 "Data" statistics + Table 1 ------------===//
//
// Regenerates the corpus statistics the paper reports in Sec. 6 (Zipfian
// type distribution, top-10 share, rare-annotation share, dedup effect)
// and the per-label edge inventory of Table 1.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "corpus/Dedup.h"

#include <algorithm>

using namespace typilus;

int main() {
  bench::banner("Corpus statistics & graph edge inventory",
                "Sec. 6 'Data' and Table 1");
  BenchScale S = BenchScale::fromEnv();
  CorpusConfig CC;
  CC.NumFiles = S.NumFiles;
  CorpusGenerator Gen(CC);
  std::vector<CorpusFile> Files = Gen.generate();
  std::vector<size_t> Dupes = findNearDuplicates(Files);

  TypeUniverse U;
  TypeHierarchy H(U);
  DatasetConfig DC;
  Dataset DS = buildDataset(Files, Gen.udts(), U, &H, DC);

  size_t Total = 0;
  std::vector<std::pair<int, TypeRef>> ByCount;
  for (const auto &[T, N] : DS.TrainTypeCounts) {
    ByCount.emplace_back(N, T);
    Total += static_cast<size_t>(N);
  }
  std::sort(ByCount.rbegin(), ByCount.rend());
  size_t Top10 = 0;
  for (size_t I = 0; I < 10 && I < ByCount.size(); ++I)
    Top10 += static_cast<size_t>(ByCount[I].first);
  size_t RareMass = 0;
  for (const auto &[N, T] : ByCount)
    if (N < DS.CommonThreshold)
      RareMass += static_cast<size_t>(N);

  std::printf("files generated:            %zu\n", Files.size());
  std::printf("near-duplicates removed:    %zu (paper: >133k of 600 repos)\n",
              Dupes.size());
  std::printf("train/valid/test files:     %zu / %zu / %zu (70/10/20)\n",
              DS.Train.size(), DS.Valid.size(), DS.Test.size());
  std::printf("annotated symbols (train):  %zu\n", Total);
  std::printf("distinct types (train):     %zu\n", ByCount.size());
  std::printf("top-10 types share:         %.1f%%  (paper: ~50%%)\n",
              100.0 * static_cast<double>(Top10) / static_cast<double>(Total));
  std::printf("rare-annotation share:      %.1f%%  (paper: 32%%; rare = <%d "
              "train annotations)\n\n",
              100.0 * static_cast<double>(RareMass) /
                  static_cast<double>(Total),
              DS.CommonThreshold);

  TextTable Tt;
  Tt.setHeader({"rank", "type", "train annotations"});
  for (size_t I = 0; I < 10 && I < ByCount.size(); ++I)
    Tt.addRow({strformat("%zu", I + 1), ByCount[I].second->str(),
               strformat("%d", ByCount[I].first)});
  std::printf("%s\n", Tt.renderAscii().c_str());

  // Table 1: edge counts per label over the training graphs.
  std::array<size_t, NumEdgeLabels> Counts{};
  size_t Nodes = 0;
  for (const FileExample &F : DS.Train) {
    auto C = F.Graph.edgeCounts();
    for (size_t I = 0; I != NumEdgeLabels; ++I)
      Counts[I] += C[I];
    Nodes += F.Graph.numNodes();
  }
  TextTable Et;
  Et.setHeader({"edge label (Table 1)", "count", "per node"});
  for (size_t I = 0; I != NumEdgeLabels; ++I)
    Et.addRow({edgeLabelName(static_cast<EdgeLabel>(I)),
               strformat("%zu", Counts[I]),
               strformat("%.2f", static_cast<double>(Counts[I]) /
                                     static_cast<double>(Nodes))});
  std::printf("%s", Et.renderAscii().c_str());
  return 0;
}
