//===- bench/speed_micro.cpp - Sec. 6.1 "Computational Speed" -----------------===//
//
// google-benchmark microbenches for the paper's speed claims: a GGNN
// training epoch is far cheaper than a biRNN epoch (paper: 86s vs 5255s
// per epoch, ~29x faster inference), plus kNN index and graph-construction
// throughput.
//
// The kernel benches take a trailing `threads` argument (1 = serial
// baseline, 0 = all hardware threads) so one run reports the
// serial-vs-parallel story of the execution layer (support/ThreadPool.h).
// Because every kernel is bit-reproducible across thread counts, the two
// rows compute identical results. `--quick` runs just the kernel
// microbenches (the CI smoke test).
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "nn/Kernels.h"
#include "nn/Simd.h"
#include "pyfront/Parser.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

using namespace typilus;

namespace {

/// Shared fixture state, built once.
struct SpeedEnv {
  Workbench WB;
  std::unique_ptr<TypeModel> GraphModel, SeqModel;

  SpeedEnv() {
    CorpusConfig CC;
    CC.NumFiles = 24;
    DatasetConfig DC;
    WB = Workbench::make(CC, DC);
    ModelConfig GC;
    GC.Encoder = EncoderKind::Graph;
    GC.TimeSteps = 8; // the paper's T=8 for the speed comparison
    GraphModel = makeModel(GC, WB.DS, *WB.U);
    ModelConfig SC;
    SC.Encoder = EncoderKind::Seq;
    SeqModel = makeModel(SC, WB.DS, *WB.U);
  }

  static SpeedEnv &get() {
    static SpeedEnv E;
    return E;
  }
};

/// A τmap of \p NumMarkers random D-dimensional markers (all typed `int`;
/// the kNN benches measure geometry, not scoring).
TypeMap makeFilledMap(TypeUniverse &U, int NumMarkers, int D, uint64_t Seed) {
  Rng R(Seed);
  TypeMap Map(D);
  Map.reserve(static_cast<size_t>(NumMarkers));
  std::vector<float> Emb(static_cast<size_t>(D));
  TypeRef T = U.parse("int");
  for (int I = 0; I != NumMarkers; ++I) {
    for (float &X : Emb)
      X = static_cast<float>(R.normal());
    Map.add(Emb.data(), T);
  }
  return Map;
}

//===--------------------------------------------------------------------===//
// Kernel microbenches (serial vs parallel; `--quick` runs only these)
//===--------------------------------------------------------------------===//

/// Dense GEMM throughput at a GGNN-ish square size. Arg0 = dim,
/// Arg1 = threads (0 = all).
void BM_MatmulKernel(benchmark::State &State) {
  const int64_t D = State.range(0);
  setGlobalNumThreads(static_cast<int>(State.range(1)));
  Rng R(9);
  Tensor A = Tensor::randn(D, D, R, 1.f), B = Tensor::randn(D, D, R, 1.f);
  Tensor C(D, D);
  for (auto _ : State) {
    gemm(false, false, D, D, D, 1.f, A.data(), B.data(), 0.f, C.data());
    benchmark::DoNotOptimize(C.data());
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() * 2 * D * D * D); // FLOPs
}
BENCHMARK(BM_MatmulKernel)
    ->Args({192, 1})
    ->Args({192, 0})
    ->ArgNames({"dim", "threads"})
    ->Unit(benchmark::kMicrosecond);

/// One full GGNN forward pass (T=8 message-passing steps) over the whole
/// train split merged into a single batch graph. Arg0 = threads.
void BM_GgnnStep(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  setGlobalNumThreads(static_cast<int>(State.range(0)));
  std::vector<const FileExample *> Batch;
  for (const FileExample &F : E.WB.DS.Train)
    Batch.push_back(&F);
  for (auto _ : State) {
    std::vector<const Target *> Targets;
    benchmark::DoNotOptimize(E.GraphModel->embed(Batch, &Targets));
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Batch.size()) *
                          E.GraphModel->config().TimeSteps);
}
BENCHMARK(BM_GgnnStep)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

/// Bulk kNN queries through the pool. Arg0 = threads.
void BM_KnnQueryBatch(benchmark::State &State) {
  const int Threads = static_cast<int>(State.range(0));
  const int NumMarkers = 20000, NumQueries = 256, D = 32;
  TypeUniverse U;
  TypeMap Map = makeFilledMap(U, NumMarkers, D, 7);
  AnnoyIndex Annoy(Map);
  Rng R(8);
  std::vector<float> Qs(static_cast<size_t>(NumQueries * D));
  for (float &X : Qs)
    X = static_cast<float>(R.normal());
  for (auto _ : State) {
    auto Results = Annoy.queryBatch(Qs.data(), NumQueries, 10, -1, Threads);
    benchmark::DoNotOptimize(Results.data());
  }
  State.SetItemsProcessed(State.iterations() * NumQueries);
}
BENCHMARK(BM_KnnQueryBatch)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

/// Annoy-forest construction, one pool task per tree. Arg0 = threads.
void BM_AnnoyBuild(benchmark::State &State) {
  const int Threads = static_cast<int>(State.range(0));
  const int NumMarkers = 20000;
  TypeUniverse U;
  TypeMap Map = makeFilledMap(U, NumMarkers, 32, 17);
  setGlobalNumThreads(Threads);
  for (auto _ : State) {
    AnnoyIndex Idx(Map);
    benchmark::DoNotOptimize(&Idx);
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() * NumMarkers);
}
BENCHMARK(BM_AnnoyBuild)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

//===--------------------------------------------------------------------===//
// SIMD vs scalar (single thread, so the rows isolate the ISA dispatch win
// from the thread-pool win measured above)
//===--------------------------------------------------------------------===//

/// Pins the dispatch table for one bench run; restores the startup
/// selection (SIMD when available) afterwards.
struct SimdPin {
  explicit SimdPin(bool Simd) { nn::simd::setSimdEnabled(Simd); }
  ~SimdPin() { nn::simd::setSimdEnabled(true); }
};

/// GEMM through the dispatch table. Arg0 = simd (0 = scalar reference).
void BM_GemmSimd(benchmark::State &State) {
  SimdPin Pin(State.range(0) != 0);
  setGlobalNumThreads(1);
  const int64_t D = 192;
  Rng R(9);
  Tensor A = Tensor::randn(D, D, R, 1.f), B = Tensor::randn(D, D, R, 1.f);
  Tensor C(D, D);
  for (auto _ : State) {
    gemm(false, false, D, D, D, 1.f, A.data(), B.data(), 0.f, C.data());
    benchmark::DoNotOptimize(C.data());
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() * 2 * D * D * D);
}
BENCHMARK(BM_GemmSimd)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"simd"})
    ->Unit(benchmark::kMicrosecond);

/// Shared body for the fused activation benches: refill from the same
/// random source each iteration (both arms pay the same memcpy), then run
/// the in-place kernel.
template <void (*Kernel)(float *, int64_t)>
void activationBench(benchmark::State &State) {
  SimdPin Pin(State.range(0) != 0);
  setGlobalNumThreads(1);
  const int64_t N = 1 << 16;
  Rng R(11);
  std::vector<float> Src(static_cast<size_t>(N)), X(static_cast<size_t>(N));
  for (float &V : Src)
    V = static_cast<float>(R.normal());
  for (auto _ : State) {
    std::memcpy(X.data(), Src.data(), static_cast<size_t>(N) * 4);
    Kernel(X.data(), N);
    benchmark::DoNotOptimize(X.data());
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() * N);
}

void BM_SigmoidSimd(benchmark::State &State) {
  activationBench<nn::kernels::sigmoidForward>(State);
}
BENCHMARK(BM_SigmoidSimd)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"simd"})
    ->Unit(benchmark::kMicrosecond);

void BM_TanhSimd(benchmark::State &State) { activationBench<nn::kernels::tanhForward>(State); }
BENCHMARK(BM_TanhSimd)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"simd"})
    ->Unit(benchmark::kMicrosecond);

/// Row-wise softmax (the attention/scoring shape). Arg0 = simd.
void BM_SoftmaxSimd(benchmark::State &State) {
  SimdPin Pin(State.range(0) != 0);
  setGlobalNumThreads(1);
  const int64_t Rows = 256, Cols = 256;
  Rng R(12);
  std::vector<float> Src(static_cast<size_t>(Rows * Cols)),
      X(static_cast<size_t>(Rows * Cols));
  for (float &V : Src)
    V = static_cast<float>(R.normal());
  for (auto _ : State) {
    std::memcpy(X.data(), Src.data(), static_cast<size_t>(Rows * Cols) * 4);
    nn::kernels::softmaxRowsInPlace(X.data(), Rows, Cols);
    benchmark::DoNotOptimize(X.data());
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() * Rows * Cols);
}
BENCHMARK(BM_SoftmaxSimd)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"simd"})
    ->Unit(benchmark::kMicrosecond);

/// All-pairs L1 (the clustering inner loop). Arg0 = simd.
void BM_PairwiseL1Simd(benchmark::State &State) {
  SimdPin Pin(State.range(0) != 0);
  setGlobalNumThreads(1);
  const int64_t Rows = 256, D = 64;
  Rng R(13);
  std::vector<float> A(static_cast<size_t>(Rows * D));
  for (float &V : A)
    V = static_cast<float>(R.normal());
  std::vector<float> Out(static_cast<size_t>(Rows * Rows));
  for (auto _ : State) {
    nn::kernels::pairwiseL1(Out.data(), A.data(), Rows, D);
    benchmark::DoNotOptimize(Out.data());
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() * Rows * Rows);
}
BENCHMARK(BM_PairwiseL1Simd)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"simd"})
    ->Unit(benchmark::kMicrosecond);

/// Full-τmap L1 scan against one query, per marker store. Arg0 = store
/// (0 = f32, 1 = f16, 2 = int8), Arg1 = simd. The f16/int8 rows measure
/// the quantized scan: less memory traffic per marker, decode fused into
/// the distance kernel.
void BM_TmapScanSimd(benchmark::State &State) {
  SimdPin Pin(State.range(1) != 0);
  const auto Store = static_cast<MarkerStore>(State.range(0));
  const int NumMarkers = 20000, D = 32;
  TypeUniverse U;
  TypeMap Map = makeFilledMap(U, NumMarkers, D, 7);
  if (Store != MarkerStore::F32)
    Map.quantize(Store);
  Rng R(8);
  std::vector<float> Q(static_cast<size_t>(D));
  for (float &X : Q)
    X = static_cast<float>(R.normal());
  for (auto _ : State) {
    float Acc = 0;
    for (size_t I = 0; I != Map.size(); ++I)
      Acc += Map.l1DistanceTo(Q.data(), I);
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(State.iterations() * NumMarkers);
}
BENCHMARK(BM_TmapScanSimd)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->ArgNames({"store", "simd"})
    ->Unit(benchmark::kMicrosecond);

//===--------------------------------------------------------------------===//
// End-to-end benches (the paper's Sec. 6.1 comparison)
//===--------------------------------------------------------------------===//

void BM_GnnTrainEpoch(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  TrainOptions TO;
  TO.Epochs = 1;
  TO.NumThreads = static_cast<int>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(trainModel(*E.GraphModel, E.WB.DS.Train, TO));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(E.WB.DS.Train.size()));
}
BENCHMARK(BM_GnnTrainEpoch)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_BiRnnTrainEpoch(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  TrainOptions TO;
  TO.Epochs = 1;
  TO.NumThreads = static_cast<int>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(trainModel(*E.SeqModel, E.WB.DS.Train, TO));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(E.WB.DS.Train.size()));
}
BENCHMARK(BM_BiRnnTrainEpoch)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_GnnInferencePerGraph(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  const FileExample &F = E.WB.DS.Test.front();
  for (auto _ : State) {
    std::vector<const Target *> Targets;
    benchmark::DoNotOptimize(E.GraphModel->embed({&F}, &Targets));
  }
}
BENCHMARK(BM_GnnInferencePerGraph)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BiRnnInferencePerFile(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  const FileExample &F = E.WB.DS.Test.front();
  for (auto _ : State) {
    std::vector<const Target *> Targets;
    benchmark::DoNotOptimize(E.SeqModel->embed({&F}, &Targets));
  }
}
BENCHMARK(BM_BiRnnInferencePerFile)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_GraphConstruction(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  const CorpusFile &F = E.WB.Files.front();
  TypeUniverse U;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildExample(F, U, GraphBuildOptions{}));
}
BENCHMARK(BM_GraphConstruction)->Unit(benchmark::kMicrosecond);

/// kNN queries: exact scan vs the Annoy-style forest (Sec. 4.2 requires a
/// spatial index for a practical τmap).
void BM_KnnQuery(benchmark::State &State) {
  const bool UseAnnoy = State.range(0) != 0;
  const int NumMarkers = static_cast<int>(State.range(1));
  TypeUniverse U;
  TypeMap Map = makeFilledMap(U, NumMarkers, 32, 7);
  ExactIndex Exact(Map);
  AnnoyIndex Annoy(Map);
  Rng R(8);
  std::vector<float> Q(32);
  for (float &X : Q)
    X = static_cast<float>(R.normal());
  for (auto _ : State) {
    if (UseAnnoy)
      benchmark::DoNotOptimize(Annoy.query(Q.data(), 10));
    else
      benchmark::DoNotOptimize(Exact.query(Q.data(), 10));
  }
}
BENCHMARK(BM_KnnQuery)
    ->Args({0, 2000})
    ->Args({1, 2000})
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Unit(benchmark::kMicrosecond);

} // namespace

// Custom main so `--quick` (used by the CI smoke step) maps onto a filter
// for the fast kernel microbenches instead of tripping google-benchmark's
// unknown-flag handling.
int main(int argc, char **argv) {
  std::vector<char *> Args;
  bool Quick = false;
  for (int I = 0; I != argc; ++I) {
    if (argv[I] && std::strcmp(argv[I], "--quick") == 0) {
      Quick = true;
      continue;
    }
    Args.push_back(argv[I]);
  }
  std::string Filter = "--benchmark_filter=BM_(MatmulKernel|GgnnStep|"
                       "KnnQueryBatch|AnnoyBuild|GemmSimd|SigmoidSimd|"
                       "TanhSimd|SoftmaxSimd|PairwiseL1Simd|TmapScanSimd)";
  if (Quick)
    Args.push_back(Filter.data());
  int ArgC = static_cast<int>(Args.size());
  benchmark::Initialize(&ArgC, Args.data());
  if (benchmark::ReportUnrecognizedArguments(ArgC, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
