//===- bench/speed_micro.cpp - Sec. 6.1 "Computational Speed" -----------------===//
//
// google-benchmark microbenches for the paper's speed claims: a GGNN
// training epoch is far cheaper than a biRNN epoch (paper: 86s vs 5255s
// per epoch, ~29x faster inference), plus kNN index and graph-construction
// throughput.
//
// The kernel benches take a trailing `threads` argument (1 = serial
// baseline, 0 = all hardware threads) so one run reports the
// serial-vs-parallel story of the execution layer (support/ThreadPool.h).
// Because every kernel is bit-reproducible across thread counts, the two
// rows compute identical results. `--quick` runs just the kernel
// microbenches (the CI smoke test).
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "pyfront/Parser.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

using namespace typilus;

namespace {

/// Shared fixture state, built once.
struct SpeedEnv {
  Workbench WB;
  std::unique_ptr<TypeModel> GraphModel, SeqModel;

  SpeedEnv() {
    CorpusConfig CC;
    CC.NumFiles = 24;
    DatasetConfig DC;
    WB = Workbench::make(CC, DC);
    ModelConfig GC;
    GC.Encoder = EncoderKind::Graph;
    GC.TimeSteps = 8; // the paper's T=8 for the speed comparison
    GraphModel = makeModel(GC, WB.DS, *WB.U);
    ModelConfig SC;
    SC.Encoder = EncoderKind::Seq;
    SeqModel = makeModel(SC, WB.DS, *WB.U);
  }

  static SpeedEnv &get() {
    static SpeedEnv E;
    return E;
  }
};

/// A τmap of \p NumMarkers random D-dimensional markers (all typed `int`;
/// the kNN benches measure geometry, not scoring).
TypeMap makeFilledMap(TypeUniverse &U, int NumMarkers, int D, uint64_t Seed) {
  Rng R(Seed);
  TypeMap Map(D);
  Map.reserve(static_cast<size_t>(NumMarkers));
  std::vector<float> Emb(static_cast<size_t>(D));
  TypeRef T = U.parse("int");
  for (int I = 0; I != NumMarkers; ++I) {
    for (float &X : Emb)
      X = static_cast<float>(R.normal());
    Map.add(Emb.data(), T);
  }
  return Map;
}

//===--------------------------------------------------------------------===//
// Kernel microbenches (serial vs parallel; `--quick` runs only these)
//===--------------------------------------------------------------------===//

/// Dense GEMM throughput at a GGNN-ish square size. Arg0 = dim,
/// Arg1 = threads (0 = all).
void BM_MatmulKernel(benchmark::State &State) {
  const int64_t D = State.range(0);
  setGlobalNumThreads(static_cast<int>(State.range(1)));
  Rng R(9);
  Tensor A = Tensor::randn(D, D, R, 1.f), B = Tensor::randn(D, D, R, 1.f);
  Tensor C(D, D);
  for (auto _ : State) {
    gemm(false, false, D, D, D, 1.f, A.data(), B.data(), 0.f, C.data());
    benchmark::DoNotOptimize(C.data());
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() * 2 * D * D * D); // FLOPs
}
BENCHMARK(BM_MatmulKernel)
    ->Args({192, 1})
    ->Args({192, 0})
    ->ArgNames({"dim", "threads"})
    ->Unit(benchmark::kMicrosecond);

/// One full GGNN forward pass (T=8 message-passing steps) over the whole
/// train split merged into a single batch graph. Arg0 = threads.
void BM_GgnnStep(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  setGlobalNumThreads(static_cast<int>(State.range(0)));
  std::vector<const FileExample *> Batch;
  for (const FileExample &F : E.WB.DS.Train)
    Batch.push_back(&F);
  for (auto _ : State) {
    std::vector<const Target *> Targets;
    benchmark::DoNotOptimize(E.GraphModel->embed(Batch, &Targets));
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Batch.size()) *
                          E.GraphModel->config().TimeSteps);
}
BENCHMARK(BM_GgnnStep)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

/// Bulk kNN queries through the pool. Arg0 = threads.
void BM_KnnQueryBatch(benchmark::State &State) {
  const int Threads = static_cast<int>(State.range(0));
  const int NumMarkers = 20000, NumQueries = 256, D = 32;
  TypeUniverse U;
  TypeMap Map = makeFilledMap(U, NumMarkers, D, 7);
  AnnoyIndex Annoy(Map);
  Rng R(8);
  std::vector<float> Qs(static_cast<size_t>(NumQueries * D));
  for (float &X : Qs)
    X = static_cast<float>(R.normal());
  for (auto _ : State) {
    auto Results = Annoy.queryBatch(Qs.data(), NumQueries, 10, -1, Threads);
    benchmark::DoNotOptimize(Results.data());
  }
  State.SetItemsProcessed(State.iterations() * NumQueries);
}
BENCHMARK(BM_KnnQueryBatch)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

/// Annoy-forest construction, one pool task per tree. Arg0 = threads.
void BM_AnnoyBuild(benchmark::State &State) {
  const int Threads = static_cast<int>(State.range(0));
  const int NumMarkers = 20000;
  TypeUniverse U;
  TypeMap Map = makeFilledMap(U, NumMarkers, 32, 17);
  setGlobalNumThreads(Threads);
  for (auto _ : State) {
    AnnoyIndex Idx(Map);
    benchmark::DoNotOptimize(&Idx);
  }
  setGlobalNumThreads(0);
  State.SetItemsProcessed(State.iterations() * NumMarkers);
}
BENCHMARK(BM_AnnoyBuild)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

//===--------------------------------------------------------------------===//
// End-to-end benches (the paper's Sec. 6.1 comparison)
//===--------------------------------------------------------------------===//

void BM_GnnTrainEpoch(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  TrainOptions TO;
  TO.Epochs = 1;
  TO.NumThreads = static_cast<int>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(trainModel(*E.GraphModel, E.WB.DS.Train, TO));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(E.WB.DS.Train.size()));
}
BENCHMARK(BM_GnnTrainEpoch)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_BiRnnTrainEpoch(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  TrainOptions TO;
  TO.Epochs = 1;
  TO.NumThreads = static_cast<int>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(trainModel(*E.SeqModel, E.WB.DS.Train, TO));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(E.WB.DS.Train.size()));
}
BENCHMARK(BM_BiRnnTrainEpoch)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_GnnInferencePerGraph(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  const FileExample &F = E.WB.DS.Test.front();
  for (auto _ : State) {
    std::vector<const Target *> Targets;
    benchmark::DoNotOptimize(E.GraphModel->embed({&F}, &Targets));
  }
}
BENCHMARK(BM_GnnInferencePerGraph)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BiRnnInferencePerFile(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  const FileExample &F = E.WB.DS.Test.front();
  for (auto _ : State) {
    std::vector<const Target *> Targets;
    benchmark::DoNotOptimize(E.SeqModel->embed({&F}, &Targets));
  }
}
BENCHMARK(BM_BiRnnInferencePerFile)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_GraphConstruction(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  const CorpusFile &F = E.WB.Files.front();
  TypeUniverse U;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildExample(F, U, GraphBuildOptions{}));
}
BENCHMARK(BM_GraphConstruction)->Unit(benchmark::kMicrosecond);

/// kNN queries: exact scan vs the Annoy-style forest (Sec. 4.2 requires a
/// spatial index for a practical τmap).
void BM_KnnQuery(benchmark::State &State) {
  const bool UseAnnoy = State.range(0) != 0;
  const int NumMarkers = static_cast<int>(State.range(1));
  TypeUniverse U;
  TypeMap Map = makeFilledMap(U, NumMarkers, 32, 7);
  ExactIndex Exact(Map);
  AnnoyIndex Annoy(Map);
  Rng R(8);
  std::vector<float> Q(32);
  for (float &X : Q)
    X = static_cast<float>(R.normal());
  for (auto _ : State) {
    if (UseAnnoy)
      benchmark::DoNotOptimize(Annoy.query(Q.data(), 10));
    else
      benchmark::DoNotOptimize(Exact.query(Q.data(), 10));
  }
}
BENCHMARK(BM_KnnQuery)
    ->Args({0, 2000})
    ->Args({1, 2000})
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Unit(benchmark::kMicrosecond);

} // namespace

// Custom main so `--quick` (used by the CI smoke step) maps onto a filter
// for the fast kernel microbenches instead of tripping google-benchmark's
// unknown-flag handling.
int main(int argc, char **argv) {
  std::vector<char *> Args;
  bool Quick = false;
  for (int I = 0; I != argc; ++I) {
    if (argv[I] && std::strcmp(argv[I], "--quick") == 0) {
      Quick = true;
      continue;
    }
    Args.push_back(argv[I]);
  }
  std::string Filter =
      "--benchmark_filter=BM_(MatmulKernel|GgnnStep|KnnQueryBatch|AnnoyBuild)";
  if (Quick)
    Args.push_back(Filter.data());
  int ArgC = static_cast<int>(Args.size());
  benchmark::Initialize(&ArgC, Args.data());
  if (benchmark::ReportUnrecognizedArguments(ArgC, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
