//===- bench/speed_micro.cpp - Sec. 6.1 "Computational Speed" -----------------===//
//
// google-benchmark microbenches for the paper's speed claims: a GGNN
// training epoch is far cheaper than a biRNN epoch (paper: 86s vs 5255s
// per epoch, ~29x faster inference), plus kNN index and graph-construction
// throughput.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "pyfront/Parser.h"

#include <benchmark/benchmark.h>

using namespace typilus;

namespace {

/// Shared fixture state, built once.
struct SpeedEnv {
  Workbench WB;
  std::unique_ptr<TypeModel> GraphModel, SeqModel;

  SpeedEnv() {
    CorpusConfig CC;
    CC.NumFiles = 24;
    DatasetConfig DC;
    WB = Workbench::make(CC, DC);
    ModelConfig GC;
    GC.Encoder = EncoderKind::Graph;
    GC.TimeSteps = 8; // the paper's T=8 for the speed comparison
    GraphModel = makeModel(GC, WB.DS, *WB.U);
    ModelConfig SC;
    SC.Encoder = EncoderKind::Seq;
    SeqModel = makeModel(SC, WB.DS, *WB.U);
  }

  static SpeedEnv &get() {
    static SpeedEnv E;
    return E;
  }
};

void BM_GnnTrainEpoch(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  TrainOptions TO;
  TO.Epochs = 1;
  for (auto _ : State)
    benchmark::DoNotOptimize(trainModel(*E.GraphModel, E.WB.DS.Train, TO));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(E.WB.DS.Train.size()));
}
BENCHMARK(BM_GnnTrainEpoch)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BiRnnTrainEpoch(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  TrainOptions TO;
  TO.Epochs = 1;
  for (auto _ : State)
    benchmark::DoNotOptimize(trainModel(*E.SeqModel, E.WB.DS.Train, TO));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(E.WB.DS.Train.size()));
}
BENCHMARK(BM_BiRnnTrainEpoch)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_GnnInferencePerGraph(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  const FileExample &F = E.WB.DS.Test.front();
  for (auto _ : State) {
    std::vector<const Target *> Targets;
    benchmark::DoNotOptimize(E.GraphModel->embed({&F}, &Targets));
  }
}
BENCHMARK(BM_GnnInferencePerGraph)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BiRnnInferencePerFile(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  const FileExample &F = E.WB.DS.Test.front();
  for (auto _ : State) {
    std::vector<const Target *> Targets;
    benchmark::DoNotOptimize(E.SeqModel->embed({&F}, &Targets));
  }
}
BENCHMARK(BM_BiRnnInferencePerFile)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_GraphConstruction(benchmark::State &State) {
  SpeedEnv &E = SpeedEnv::get();
  const CorpusFile &F = E.WB.Files.front();
  TypeUniverse U;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildExample(F, U, GraphBuildOptions{}));
}
BENCHMARK(BM_GraphConstruction)->Unit(benchmark::kMicrosecond);

/// kNN queries: exact scan vs the Annoy-style forest (Sec. 4.2 requires a
/// spatial index for a practical τmap).
void BM_KnnQuery(benchmark::State &State) {
  const bool UseAnnoy = State.range(0) != 0;
  const int NumMarkers = static_cast<int>(State.range(1));
  Rng R(7);
  TypeUniverse U;
  TypeMap Map(32);
  std::vector<float> Emb(32);
  TypeRef T = U.parse("int");
  for (int I = 0; I != NumMarkers; ++I) {
    for (float &X : Emb)
      X = static_cast<float>(R.normal());
    Map.add(Emb.data(), T);
  }
  ExactIndex Exact(Map);
  AnnoyIndex Annoy(Map);
  std::vector<float> Q(32);
  for (float &X : Q)
    X = static_cast<float>(R.normal());
  for (auto _ : State) {
    if (UseAnnoy)
      benchmark::DoNotOptimize(Annoy.query(Q.data(), 10));
    else
      benchmark::DoNotOptimize(Exact.query(Q.data(), 10));
  }
}
BENCHMARK(BM_KnnQuery)
    ->Args({0, 2000})
    ->Args({1, 2000})
    ->Args({0, 20000})
    ->Args({1, 20000})
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
