//===- bench/table3_symbol_kinds.cpp - Table 3: per-symbol-kind breakdown -----===//
//
// Regenerates Table 3: Typilus's accuracy split by symbol kind (variable /
// function parameter / function return).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace typilus;

int main() {
  bench::banner("Table 3: Typilus performance by symbol kind", "Table 3");
  BenchScale S = BenchScale::fromEnv();
  Workbench WB = bench::makeBench(S);
  ModelConfig MC; // defaults = Typilus (Graph encoder, Eq. 4 loss)
  ModelRun Run = trainAndEvaluate(WB, MC, bench::makeTrainOptions(S));

  struct KindRow {
    const char *Name;
    SymbolKind Kind;
  };
  const KindRow Kinds[] = {
      {"Var", SymbolKind::Variable},
      {"Func Para", SymbolKind::Parameter},
      {"Func Ret", SymbolKind::Return},
      {"Attribute", SymbolKind::Attribute},
  };

  TextTable T;
  T.setHeader({"Metric", "Var", "Func Para", "Func Ret", "Attribute"});
  std::vector<EvalSummary> Sums;
  for (const KindRow &K : Kinds)
    Sums.push_back(summarizeKind(Run.Js, K.Kind));
  auto Row = [&](const char *Metric, auto Get) {
    std::vector<double> Vals;
    for (const EvalSummary &E : Sums)
      Vals.push_back(Get(E));
    T.addNumericRow(Metric, Vals);
  };
  Row("% Exact Match", [](const EvalSummary &E) { return E.ExactAll; });
  Row("% Match up to Parametric Type",
      [](const EvalSummary &E) { return E.UpAll; });
  Row("% Type Neutral", [](const EvalSummary &E) { return E.Neutral; });
  {
    std::vector<double> Props;
    size_t Total = Run.Js.size();
    for (const EvalSummary &E : Sums)
      Props.push_back(Total == 0 ? 0
                                 : 100.0 * static_cast<double>(E.Count) /
                                       static_cast<double>(Total));
    T.addNumericRow("Proportion of testset (%)", Props);
  }
  std::printf("%s", T.renderAscii().c_str());
  std::printf("\nPaper: exact 43.5 (Var) / 53.8 (Para) / 56.9 (Ret); "
              "variables hardest on exact match.\n");
  return 0;
}
